/**
 * @file
 * Extension E1: context-switch (multiprogramming) pressure.
 *
 * The paper's machines carry no ASIDs, so every address-space switch
 * costs a full TLB flush and re-walk. This bench sweeps the scheduling
 * quantum and reports VM overhead (VMCPI + interrupt CPI @50) per
 * organization. Two results the paper's framework predicts:
 *
 *  - hardware-walked TLBs (INTEL, HW-*) refill flushed TLBs far more
 *    cheaply than software-managed ones (no interrupt storm per
 *    refill burst);
 *  - the global-virtual-space designs (NOTLB, SPUR) keep no
 *    per-process translation state at all and are immune — the
 *    selling point of single-global-address-space systems.
 *
 * Usage: bench_ctx_switch [--csv] [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    const Counter quanta[] = {0, 1'000'000, 250'000, 50'000, 10'000};
    const SystemKind kinds[] = {
        SystemKind::Ultrix, SystemKind::Mach,       SystemKind::Intel,
        SystemKind::Parisc, SystemKind::HwInverted, SystemKind::HwMips,
        SystemKind::Notlb,  SystemKind::Spur,
    };

    banner("Context-switch pressure: VM overhead (VMCPI + intCPI@50) "
           "vs scheduling quantum");
    std::cout << "caches: 64KB/1MB, 64/128B lines; TLBs flushed per "
                 "switch (no ASIDs)\n\n";

    for (const auto &workload : {std::string("gcc"),
                                 std::string("vortex")}) {
        TextTable table;
        table.setHeader({"system", "no switch", "1M", "250K", "50K",
                         "10K"});
        // Untagged (paper) TLBs: flush per switch. ASID-tagged rows
        // follow, where a switch instead costs 16 randomly-evicted
        // entries per side (competitor pressure).
        for (bool asid : {false, true}) {
            for (SystemKind kind : kinds) {
                if (asid && !kindHasTlb(kind))
                    continue; // tagging changes nothing for these
                std::vector<std::string> row = {
                    std::string(kindName(kind)) +
                    (asid ? " +ASID" : "")};
                for (Counter q : quanta) {
                    SimConfig cfg = paperConfig(kind, 64_KiB, 64, 1_MiB,
                                                128, opts);
                    cfg.ctxSwitchInterval = q;
                    if (asid)
                        cfg.tlbAsidBits = 6;
                    Results r = runOnce(cfg, workload, instrs, warmup);
                    row.push_back(
                        TextTable::fmt(r.vmcpi() + r.interruptCpi(),
                                       5));
                }
                table.addRow(row);
            }
        }
        std::cout << workload << " (" << instrs << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: software-managed TLBs degrade "
                 "steeply as the quantum\nshrinks; hardware-walked "
                 "TLBs degrade gently; NOTLB and SPUR rows are flat\n"
                 "(no per-process translation state); the +ASID rows "
                 "flatten most of the\ndegradation (switches cost "
                 "partial eviction, not a flush).\n";
    return 0;
}
