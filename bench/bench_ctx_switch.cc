/**
 * @file
 * Extension E1: context-switch (multiprogramming) pressure.
 *
 * The paper's machines carry no ASIDs, so every address-space switch
 * costs a full TLB flush and re-walk. This bench sweeps the scheduling
 * quantum and reports VM overhead (VMCPI + interrupt CPI @50) per
 * organization. Two results the paper's framework predicts:
 *
 *  - hardware-walked TLBs (INTEL, HW-*) refill flushed TLBs far more
 *    cheaply than software-managed ones (no interrupt storm per
 *    refill burst);
 *  - the global-virtual-space designs (NOTLB, SPUR) keep no
 *    per-process translation state at all and are immune — the
 *    selling point of single-global-address-space systems.
 *
 * Two SweepSpecs (untagged and ASID-tagged TLBs — the tagged one only
 * covers TLB-based organizations) share a quantum variant axis.
 *
 * Usage: bench_ctx_switch [--csv] [--instructions=N] [--jobs=N]
 *        [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    const Counter quanta[] = {0, 1'000'000, 250'000, 50'000, 10'000};
    const std::vector<SystemKind> kinds = {
        SystemKind::Ultrix, SystemKind::Mach,       SystemKind::Intel,
        SystemKind::Parisc, SystemKind::HwInverted, SystemKind::HwMips,
        SystemKind::Notlb,  SystemKind::Spur,
    };

    banner("Context-switch pressure: VM overhead (VMCPI + intCPI@50) "
           "vs scheduling quantum");
    std::cout << "caches: 64KB/1MB, 64/128B lines; TLBs flushed per "
                 "switch (no ASIDs)\n\n";

    // Untagged (paper) TLBs: flush per switch. The ASID-tagged spec
    // instead costs each switch 16 randomly-evicted entries per side
    // (competitor pressure); tagging changes nothing for the TLB-less
    // organizations, so that spec drops them.
    auto quantumVariants = [&](bool asid) {
        std::vector<ConfigVariant> vs;
        for (Counter q : quanta)
            vs.push_back({q ? std::to_string(q) : "no switch",
                          [q, asid](SimConfig &cfg) {
                              cfg.ctxSwitchInterval = q;
                              if (asid)
                                  cfg.tlbAsidBits = 6;
                          }});
        return vs;
    };

    std::vector<SystemKind> tlb_kinds;
    for (SystemKind kind : kinds)
        if (kindHasTlb(kind))
            tlb_kinds.push_back(kind);

    SweepSpec untagged = paperSweep(opts);
    untagged.systems(kinds)
        .workloads({"gcc", "vortex"})
        .variants(quantumVariants(false));
    SweepSpec tagged = paperSweep(opts);
    tagged.systems(tlb_kinds)
        .workloads({"gcc", "vortex"})
        .variants(quantumVariants(true));

    SweepRunner runner = makeRunner(opts);
    SweepResults res_untagged = runner.run(untagged);
    SweepResults res_tagged = runner.run(tagged);

    auto overhead = [](const Results &r) {
        return r.vmcpi() + r.interruptCpi();
    };

    for (std::size_t wi = 0; wi < untagged.workloadAxis().size();
         ++wi) {
        TextTable table;
        table.setHeader({"system", "no switch", "1M", "250K", "50K",
                         "10K"});
        for (bool asid : {false, true}) {
            const SweepSpec &spec = asid ? tagged : untagged;
            const SweepResults &res = asid ? res_tagged : res_untagged;
            for (std::size_t ki = 0; ki < spec.systemAxis().size();
                 ++ki) {
                std::vector<std::string> row = {
                    std::string(kindName(spec.systemAxis()[ki])) +
                    (asid ? " +ASID" : "")};
                for (std::size_t vi = 0;
                     vi < spec.variantAxis().size(); ++vi) {
                    double v = res.meanMetric({.system = ki,
                                               .workload = wi,
                                               .variant = vi},
                                              overhead);
                    row.push_back(TextTable::fmt(v, 5));
                }
                table.addRow(row);
            }
        }
        std::cout << untagged.workloadAxis()[wi] << " ("
                  << opts.instructions << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: software-managed TLBs degrade "
                 "steeply as the quantum\nshrinks; hardware-walked "
                 "TLBs degrade gently; NOTLB and SPUR rows are flat\n"
                 "(no per-process translation state); the +ASID rows "
                 "flatten most of the\ndegradation (switches cost "
                 "partial eviction, not a flush).\n";
    return 0;
}
