/**
 * @file
 * Figure 10-style [reconstructed]: VMCPI with interrupt overhead
 * stacked on top, across L1 cache sizes, at the paper's featured
 * 64/128-byte linesizes and 1 MB L2.
 *
 * The paper's truncated Section 4.3 presents the interrupt cost in
 * relation to the cache-dependent VMCPI; this bench regenerates that
 * view: for each system and L1 size, the table shows VMCPI followed
 * by total VM-mechanism overhead (VMCPI + interrupt CPI) at each of
 * the paper's three interrupt costs. Two structural facts emerge:
 * the interrupt component is cache-independent (it scales with miss
 * *counts*, not miss *locality*), so as caches grow it comes to
 * dominate the software-managed schemes' overhead — the paper's
 * argument that interrupt handling deserves architectural attention.
 *
 * Usage: bench_fig10_interrupt_breakdown [--full] [--csv]
 *        [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    banner("Figure 10-style (reconstructed): VMCPI + interrupt "
           "overhead vs L1 size");
    std::cout << "64/128-byte L1/L2 linesizes, 1MB L2; columns show "
                 "VMCPI and VMCPI+intCPI at 10/50/200-cycle "
                 "interrupts\n\n";

    auto l1_sizes = paperL1Sizes(opts.full);

    for (const auto &workload : {std::string("gcc"),
                                 std::string("vortex")}) {
        for (SystemKind kind : paperVmSystems()) {
            TextTable table;
            table.setHeader({"L1/side", "VMCPI", "+int@10", "+int@50",
                             "+int@200", "int share@200"});
            for (std::uint64_t l1 : l1_sizes) {
                SimConfig cfg = paperConfig(kind, l1, 64, 1_MiB, 128,
                                            opts);
                Results r = runOnce(cfg, workload, instrs, warmup);
                double v = r.vmcpi();
                double i10 = v + r.interruptCpiAt(10);
                double i50 = v + r.interruptCpiAt(50);
                double i200 = v + r.interruptCpiAt(200);
                double share = i200 > 0
                                   ? 100.0 * r.interruptCpiAt(200) /
                                         i200
                                   : 0.0;
                table.addRow({sizeLabel(l1), TextTable::fmt(v, 5),
                              TextTable::fmt(i10, 5),
                              TextTable::fmt(i50, 5),
                              TextTable::fmt(i200, 5),
                              TextTable::fmt(share, 1) + "%"});
            }
            std::cout << kindName(kind) << " - " << workload << '\n';
            table.print(std::cout);
            std::cout << '\n';
        }
    }

    std::cout << "Expected shape: the interrupt columns stay constant "
                 "down each table while\nVMCPI shrinks with L1 size, "
                 "so the interrupt share grows toward the right-\n"
                 "hand percentages; INTEL's tables show zero interrupt "
                 "overhead throughout.\n";
    return 0;
}
