/**
 * @file
 * Figure 10-style [reconstructed]: VMCPI with interrupt overhead
 * stacked on top, across L1 cache sizes, at the paper's featured
 * 64/128-byte linesizes and 1 MB L2.
 *
 * The paper's truncated Section 4.3 presents the interrupt cost in
 * relation to the cache-dependent VMCPI; this bench regenerates that
 * view: for each system and L1 size, the table shows VMCPI followed
 * by total VM-mechanism overhead (VMCPI + interrupt CPI) at each of
 * the paper's three interrupt costs. Two structural facts emerge:
 * the interrupt component is cache-independent (it scales with miss
 * *counts*, not miss *locality*), so as caches grow it comes to
 * dominate the software-managed schemes' overhead — the paper's
 * argument that interrupt handling deserves architectural attention.
 *
 * Usage: bench_fig10_interrupt_breakdown [--full] [--csv]
 *        [--instructions=N] [--jobs=N] [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    banner("Figure 10-style (reconstructed): VMCPI + interrupt "
           "overhead vs L1 size");
    std::cout << "64/128-byte L1/L2 linesizes, 1MB L2; columns show "
                 "VMCPI and VMCPI+intCPI at 10/50/200-cycle "
                 "interrupts\n\n";

    SweepSpec spec = paperSweep(opts);
    spec.systems(paperVmSystems())
        .workloads({"gcc", "vortex"})
        .l1Sizes(paperL1Sizes(opts.full));
    SweepResults res = runSweep(opts, spec);

    const auto &l1_sizes = spec.l1Axis();

    for (std::size_t wi = 0; wi < spec.workloadAxis().size(); ++wi) {
        for (std::size_t ki = 0; ki < spec.systemAxis().size(); ++ki) {
            TextTable table;
            table.setHeader({"L1/side", "VMCPI", "+int@10", "+int@50",
                             "+int@200", "int share@200"});
            for (std::size_t l1i = 0; l1i < l1_sizes.size(); ++l1i) {
                CellIndex idx{.system = ki, .workload = wi, .l1 = l1i};
                auto metric = [&](auto fn) {
                    return res.meanMetric(idx, fn);
                };
                double v = metric(vmcpiOf);
                double i10 = metric([](const Results &r) {
                    return r.vmcpi() + r.interruptCpiAt(10);
                });
                double i50 = metric([](const Results &r) {
                    return r.vmcpi() + r.interruptCpiAt(50);
                });
                double i200 = metric([](const Results &r) {
                    return r.vmcpi() + r.interruptCpiAt(200);
                });
                double share = metric([](const Results &r) {
                    double total = r.vmcpi() + r.interruptCpiAt(200);
                    return total > 0
                               ? 100.0 * r.interruptCpiAt(200) / total
                               : 0.0;
                });
                table.addRow({sizeLabel(l1_sizes[l1i]),
                              TextTable::fmt(v, 5),
                              TextTable::fmt(i10, 5),
                              TextTable::fmt(i50, 5),
                              TextTable::fmt(i200, 5),
                              TextTable::fmt(share, 1) + "%"});
            }
            std::cout << kindName(spec.systemAxis()[ki]) << " - "
                      << spec.workloadAxis()[wi] << '\n';
            table.print(std::cout);
            std::cout << '\n';
        }
    }

    std::cout << "Expected shape: the interrupt columns stay constant "
                 "down each table while\nVMCPI shrinks with L1 size, "
                 "so the interrupt share grows toward the right-\n"
                 "hand percentages; INTEL's tables show zero interrupt "
                 "overhead throughout.\n";
    return 0;
}
