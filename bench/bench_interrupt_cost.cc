/**
 * @file
 * Section 4.3 [reconstructed]: the cost of precise interrupts.
 *
 * The paper sweeps the per-interrupt cost over {10, 50, 200} cycles
 * (Table 1) and concludes that "interrupts already account for a
 * large portion of memory-management overhead" — at the high end, the
 * interrupt overhead dwarfs the page-table walk itself for the
 * software-managed schemes, while INTEL's hardware-managed TLB pays
 * nothing.
 *
 * For each system and workload, prints VMCPI next to the interrupt
 * CPI at each swept cost and the resulting share of total VM-related
 * overhead attributable to the interrupt mechanism. (The interrupt
 * cost is applied at accounting time via interruptCpiAt(), so the
 * sweep needs one simulation per (system, workload) cell, not three.)
 *
 * Usage: bench_interrupt_cost [--csv] [--instructions=N] [--jobs=N]
 *        [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    banner("Interrupt-cost sweep (paper Section 4.3, reconstructed): "
           "interrupt CPI vs VMCPI");
    std::cout << "caches: 64KB/1MB split direct-mapped, 64/128B lines; "
              << "interrupt cost in {10, 50, 200} cycles\n\n";

    SweepSpec spec = paperSweep(opts);
    spec.systems(paperVmSystems()).workloads(workloadNames());
    SweepResults res = runSweep(opts, spec);

    for (std::size_t wi = 0; wi < spec.workloadAxis().size(); ++wi) {
        TextTable table;
        table.setHeader({"system", "VMCPI", "int/1Kinstr", "int@10",
                         "int@50", "int@200", "int share@200"});
        for (std::size_t ki = 0; ki < spec.systemAxis().size(); ++ki) {
            CellIndex idx{.system = ki, .workload = wi};
            auto metric = [&](auto fn) { return res.meanMetric(idx, fn); };
            double vmcpi = metric(vmcpiOf);
            double per_k = metric([](const Results &r) {
                return 1000.0 *
                       static_cast<double>(r.vmStats().interrupts) /
                       static_cast<double>(r.userInstrs());
            });
            double i10 = metric([](const Results &r) {
                return r.interruptCpiAt(10);
            });
            double i50 = metric([](const Results &r) {
                return r.interruptCpiAt(50);
            });
            double i200 = metric([](const Results &r) {
                return r.interruptCpiAt(200);
            });
            double share = metric([](const Results &r) {
                double v = r.vmcpi();
                double i = r.interruptCpiAt(200);
                return (v + i) > 0 ? i / (v + i) : 0.0;
            });
            table.addRow({kindName(spec.systemAxis()[ki]),
                          TextTable::fmt(vmcpi, 5),
                          TextTable::fmt(per_k, 2),
                          TextTable::fmt(i10, 5), TextTable::fmt(i50, 5),
                          TextTable::fmt(i200, 5),
                          TextTable::fmt(100 * share, 1) + "%"});
        }
        std::cout << spec.workloadAxis()[wi] << " ("
                  << opts.instructions << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: INTEL's interrupt columns are zero "
                 "(hardware-managed TLB);\nfor the software-managed "
                 "schemes the interrupt share at 200 cycles exceeds "
                 "50%,\nsupporting the paper's call for cheaper "
                 "precise-interrupt handling.\n";
    return 0;
}
