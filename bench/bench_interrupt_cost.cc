/**
 * @file
 * Section 4.3 [reconstructed]: the cost of precise interrupts.
 *
 * The paper sweeps the per-interrupt cost over {10, 50, 200} cycles
 * (Table 1) and concludes that "interrupts already account for a
 * large portion of memory-management overhead" — at the high end, the
 * interrupt overhead dwarfs the page-table walk itself for the
 * software-managed schemes, while INTEL's hardware-managed TLB pays
 * nothing.
 *
 * For each system and workload, prints VMCPI next to the interrupt
 * CPI at each swept cost and the resulting share of total VM-related
 * overhead attributable to the interrupt mechanism.
 *
 * Usage: bench_interrupt_cost [--csv] [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    banner("Interrupt-cost sweep (paper Section 4.3, reconstructed): "
           "interrupt CPI vs VMCPI");
    std::cout << "caches: 64KB/1MB split direct-mapped, 64/128B lines; "
              << "interrupt cost in {10, 50, 200} cycles\n\n";

    for (const auto &workload : workloadNames()) {
        TextTable table;
        table.setHeader({"system", "VMCPI", "int/1Kinstr", "int@10",
                         "int@50", "int@200", "int share@200"});
        for (SystemKind kind : paperVmSystems()) {
            SimConfig cfg = paperConfig(kind, 64_KiB, 64, 1_MiB, 128,
                                        opts);
            Results r = runOnce(cfg, workload, instrs, warmup);
            double vmcpi = r.vmcpi();
            double per_k = 1000.0 *
                           static_cast<double>(r.vmStats().interrupts) /
                           static_cast<double>(r.userInstrs());
            double i10 = r.interruptCpiAt(10);
            double i50 = r.interruptCpiAt(50);
            double i200 = r.interruptCpiAt(200);
            double share =
                (vmcpi + i200) > 0 ? i200 / (vmcpi + i200) : 0.0;
            table.addRow({kindName(kind), TextTable::fmt(vmcpi, 5),
                          TextTable::fmt(per_k, 2),
                          TextTable::fmt(i10, 5), TextTable::fmt(i50, 5),
                          TextTable::fmt(i200, 5),
                          TextTable::fmt(100 * share, 1) + "%"});
        }
        std::cout << workload << " (" << instrs << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: INTEL's interrupt columns are zero "
                 "(hardware-managed TLB);\nfor the software-managed "
                 "schemes the interrupt share at 200 cycles exceeds "
                 "50%,\nsupporting the paper's call for cheaper "
                 "precise-interrupt handling.\n";
    return 0;
}
