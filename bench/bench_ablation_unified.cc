/**
 * @file
 * Ablation A6: unified vs split L2. The paper simulates split caches
 * at both levels and notes that unified caches, "while giving better
 * performance, would add too many variables". This ablation compares
 * split L2 (per-side size S each) against a unified L2 of the same
 * total capacity (2S shared), reporting MCPI and VMCPI.
 *
 * Usage: bench_ablation_unified [--csv] [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    banner("Ablation: split vs unified L2 (equal total capacity)");
    std::cout << "caches: 64KB L1 per side, 64/128B lines; split = "
                 "2x1MB, unified = 1x2MB shared\n\n";

    for (const auto &workload : workloadNames()) {
        TextTable table;
        table.setHeader({"system", "MCPI split", "MCPI unified",
                         "VMCPI split", "VMCPI unified"});
        for (SystemKind kind : paperVmSystems()) {
            std::vector<std::string> mcpi, vmcpi;
            for (bool unified : {false, true}) {
                SimConfig cfg = paperConfig(kind, 64_KiB, 64, 1_MiB,
                                            128, opts);
                cfg.unifiedL2 = unified;
                Results r = runOnce(cfg, workload, instrs, warmup);
                mcpi.push_back(TextTable::fmt(r.mcpi(), 4));
                vmcpi.push_back(TextTable::fmt(r.vmcpi(), 5));
            }
            table.addRow(
                {kindName(kind), mcpi[0], mcpi[1], vmcpi[0], vmcpi[1]});
        }
        std::cout << workload << " (" << instrs << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: unified L2 lets the dominant side "
                 "(data, for these\nworkloads) claim more than half "
                 "the capacity, generally lowering MCPI;\nI/D conflict "
                 "interference can cut the other way for "
                 "streaming-heavy mixes.\n";
    return 0;
}
