/**
 * @file
 * Ablation A6: unified vs split L2. The paper simulates split caches
 * at both levels and notes that unified caches, "while giving better
 * performance, would add too many variables". This ablation compares
 * split L2 (per-side size S each) against a unified L2 of the same
 * total capacity (2S shared) on the variant axis, reporting MCPI and
 * VMCPI.
 *
 * Usage: bench_ablation_unified [--csv] [--instructions=N] [--jobs=N]
 *        [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    banner("Ablation: split vs unified L2 (equal total capacity)");
    std::cout << "caches: 64KB L1 per side, 64/128B lines; split = "
                 "2x1MB, unified = 1x2MB shared\n\n";

    std::vector<ConfigVariant> variants;
    for (bool unified : {false, true})
        variants.push_back({unified ? "unified" : "split",
                            [unified](SimConfig &cfg) {
                                cfg.unifiedL2 = unified;
                            }});

    SweepSpec spec = paperSweep(opts);
    spec.systems(paperVmSystems())
        .workloads(workloadNames())
        .variants(variants);
    SweepResults res = runSweep(opts, spec);

    for (std::size_t wi = 0; wi < spec.workloadAxis().size(); ++wi) {
        TextTable table;
        table.setHeader({"system", "MCPI split", "MCPI unified",
                         "VMCPI split", "VMCPI unified"});
        for (std::size_t ki = 0; ki < spec.systemAxis().size(); ++ki) {
            std::vector<std::string> mcpi, vmcpi;
            for (std::size_t vi = 0; vi < variants.size(); ++vi) {
                CellIndex idx{.system = ki, .workload = wi,
                              .variant = vi};
                mcpi.push_back(
                    TextTable::fmt(res.meanMetric(idx, mcpiOf), 4));
                vmcpi.push_back(
                    TextTable::fmt(res.meanMetric(idx, vmcpiOf), 5));
            }
            table.addRow({kindName(spec.systemAxis()[ki]), mcpi[0],
                          mcpi[1], vmcpi[0], vmcpi[1]});
        }
        std::cout << spec.workloadAxis()[wi] << " ("
                  << opts.instructions << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: unified L2 lets the dominant side "
                 "(data, for these\nworkloads) claim more than half "
                 "the capacity, generally lowering MCPI;\nI/D conflict "
                 "interference can cut the other way for "
                 "streaming-heavy mixes.\n";
    return 0;
}
