/**
 * @file
 * Figure 6 (paper): VMCPI vs L1 and L2 cache size and linesize — GCC.
 *
 * For each of the five VM organizations and each L2 size, prints one
 * table: rows are L1 cache sizes (per side), columns are L1/L2
 * linesize combinations, cells are VMCPI (the cost of walking the
 * page table and refilling the TLB — or, for NOTLB, filling a cache
 * block). Interrupt cost is excluded, exactly as in the paper's
 * Figure 6.
 *
 * Expected shape (paper §4.1): overheads in the 5-10%-of-1-CPI
 * ballpark; ULTRIX ~ MACH; NOTLB far more sensitive to cache size and
 * linesize than the TLB-based schemes; PA-RISC relatively immune to
 * linesize at large L1.
 *
 * Usage: bench_fig6_vmcpi_gcc [--full] [--csv] [--instructions=N]
 */

#include "vmcpi_sweep.hh"

int
main(int argc, char **argv)
{
    return vmsim::bench::runVmcpiSweep("Figure 6", "gcc", argc, argv);
}
