/**
 * @file
 * TLB-size sensitivity [reconstructed]: the abstract's "systems are
 * fairly sensitive to TLB size".
 *
 * Sweeps the per-side TLB entry count over 16..512 for every
 * TLB-based organization and prints VMCPI (plus walk counts per 1K
 * instructions). NOTLB/BASE have no TLB and appear as flat reference
 * rows where applicable.
 *
 * Usage: bench_tlb_size [--csv] [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    const unsigned sizes[] = {16, 32, 64, 128, 256, 512};
    const SystemKind tlb_kinds[] = {
        SystemKind::Ultrix,     SystemKind::Mach,  SystemKind::Intel,
        SystemKind::Parisc,     SystemKind::HwInverted,
        SystemKind::HwMips,
    };

    banner("TLB-size sensitivity (abstract result, reconstructed): "
           "VMCPI vs TLB entries per side");
    std::cout << "caches: 64KB/1MB split direct-mapped, 64/128B lines; "
              << "protected slots scale as entries/8 (16 at the "
                 "paper's 128)\n\n";

    for (const auto &workload : workloadNames()) {
        TextTable table;
        std::vector<std::string> header = {"system"};
        for (unsigned n : sizes)
            header.push_back(std::to_string(n));
        table.setHeader(header);

        for (SystemKind kind : tlb_kinds) {
            std::vector<std::string> row = {kindName(kind)};
            for (unsigned n : sizes) {
                SimConfig cfg = paperConfig(kind, 64_KiB, 64, 1_MiB,
                                            128, opts);
                cfg.tlbEntries = n;
                cfg.tlbProtectedSlots = n / 8;
                Results r = runOnce(cfg, workload, instrs, warmup);
                row.push_back(TextTable::fmt(r.vmcpi(), 5));
            }
            table.addRow(row);
        }
        std::cout << workload << " (VMCPI; " << instrs
                  << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: VMCPI falls steeply with TLB size "
                 "until the workload's page\nworking set fits, and "
                 "vortex (the largest working set) stays sensitive "
                 "longest.\n";
    return 0;
}
