/**
 * @file
 * TLB-size sensitivity [reconstructed]: the abstract's "systems are
 * fairly sensitive to TLB size".
 *
 * Sweeps the per-side TLB entry count over 16..512 for every
 * TLB-based organization and prints VMCPI (plus walk counts per 1K
 * instructions). The entry counts ride the SweepSpec's open-ended
 * variant axis (they are not one of the fixed cache axes).
 *
 * Usage: bench_tlb_size [--csv] [--instructions=N] [--jobs=N]
 *        [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    const unsigned sizes[] = {16, 32, 64, 128, 256, 512};

    banner("TLB-size sensitivity (abstract result, reconstructed): "
           "VMCPI vs TLB entries per side");
    std::cout << "caches: 64KB/1MB split direct-mapped, 64/128B lines; "
              << "protected slots scale as entries/8 (16 at the "
                 "paper's 128)\n\n";

    std::vector<ConfigVariant> variants;
    for (unsigned n : sizes)
        variants.push_back({std::to_string(n), [n](SimConfig &cfg) {
                                cfg.tlbEntries = n;
                                cfg.tlbProtectedSlots = n / 8;
                            }});

    SweepSpec spec = paperSweep(opts);
    spec.systems({SystemKind::Ultrix, SystemKind::Mach,
                  SystemKind::Intel, SystemKind::Parisc,
                  SystemKind::HwInverted, SystemKind::HwMips})
        .workloads(workloadNames())
        .variants(variants);
    SweepResults res = runSweep(opts, spec);

    for (std::size_t wi = 0; wi < spec.workloadAxis().size(); ++wi) {
        TextTable table;
        std::vector<std::string> header = {"system"};
        for (const ConfigVariant &v : spec.variantAxis())
            header.push_back(v.label);
        table.setHeader(header);

        for (std::size_t ki = 0; ki < spec.systemAxis().size(); ++ki) {
            std::vector<std::string> row = {
                kindName(spec.systemAxis()[ki])};
            for (std::size_t vi = 0; vi < spec.variantAxis().size();
                 ++vi) {
                double v = res.meanMetric(
                    {.system = ki, .workload = wi, .variant = vi},
                    vmcpiOf);
                row.push_back(TextTable::fmt(v, 5));
            }
            table.addRow(row);
        }
        std::cout << spec.workloadAxis()[wi] << " (VMCPI; "
                  << opts.instructions << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: VMCPI falls steeply with TLB size "
                 "until the workload's page\nworking set fits, and "
                 "vortex (the largest working set) stays sensitive "
                 "longest.\n";
    return 0;
}
