/**
 * @file
 * Ablation A2: PA-RISC hashed-table load factor. The paper chooses a
 * 2:1 entries-to-frames ratio "which should result in an average
 * collision-chain length of 1.25 entries" (and measured ~1.3 for
 * gcc). This ablation sweeps the ratio over {1, 2, 4} and reports the
 * observed chain statistics and their effect on VMCPI.
 *
 * The in-vivo half needs the live page table after each run (chain
 * and CRT statistics are not part of Results), so it uses
 * SweepRunner::map - the runner's raw parallel-map escape hatch -
 * instead of a SweepSpec grid.
 *
 * Usage: bench_ablation_hpt [--csv] [--instructions=N] [--jobs=N]
 */

#include <set>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.resolvedWarmup();
    SweepRunner runner = makeRunner(opts);

    const unsigned ratios[] = {1u, 2u, 4u};

    banner("Ablation: PA-RISC hashed-page-table load factor");
    std::cout << "8MB physical memory = 2048 frames; table entries = "
                 "ratio x frames\n\n";

    // Full-occupancy chain statistics, directly comparable to the
    // paper's expectation (1:1 ratio -> ~1.5 average chain, 2:1 ->
    // ~1.25): insert a full physical memory's worth of pages (2048)
    // drawn from across the user space, as the paper's 200M-
    // instruction runs would.
    {
        struct Probe {
            double avg_chain, avg_search;
            std::size_t crt;
        };
        std::vector<Probe> probes =
            runner.map(std::size(ratios), [&](std::size_t i) {
                PhysMem pm(8_MiB, 12);
                HashedPageTable pt(pm, ratios[i]);
                Random rng(opts.seed);
                std::vector<Addr> buf;
                std::set<Vpn> touched;
                while (touched.size() < 2048) {
                    Vpn v = rng.uniform(kUserSpan >> 12);
                    if (!touched.insert(v).second)
                        continue;
                    buf.clear();
                    pt.walk(v, buf);
                }
                return Probe{pt.avgChainLength(),
                             pt.searchDepth().mean(), pt.crtEntries()};
            });

        TextTable table;
        table.setHeader({"ratio", "paper avg chain", "measured avg",
                         "avg search depth", "CRT entries"});
        const char *paper_chain[] = {"~1.5", "~1.25", "~1.125"};
        for (std::size_t i = 0; i < std::size(ratios); ++i)
            table.addRow({std::to_string(ratios[i]) + ":1",
                          paper_chain[i],
                          TextTable::fmt(probes[i].avg_chain, 3),
                          TextTable::fmt(probes[i].avg_search, 3),
                          std::to_string(probes[i].crt)});
        std::cout << "Full occupancy (2048 pages resident, the paper's "
                     "sizing assumption):\n";
        emit(table, opts);
    }

    std::cout << "In-vivo (workload-driven) statistics - our synthetic "
                 "workloads touch fewer\npages than a full physical "
                 "memory, so chains are shorter than the paper's:\n\n";

    struct InVivo {
        std::size_t buckets, crt;
        double avg_chain, avg_search, loads_per_walk, vmcpi;
    };
    std::vector<std::string> workloads = workloadNames();
    std::vector<InVivo> rows = runner.map(
        workloads.size() * std::size(ratios), [&](std::size_t j) {
            const std::string &workload =
                workloads[j / std::size(ratios)];
            unsigned ratio = ratios[j % std::size(ratios)];
            SimConfig cfg = paperConfig(SystemKind::Parisc, 64_KiB, 64,
                                        1_MiB, 128, opts);
            cfg.hptRatio = ratio;
            auto trace = makeWorkload(workload, cfg.seed);
            System sys(cfg);
            Results r = sys.run(*trace, instrs, workload, warmup);
            const auto &pt =
                static_cast<PariscVm &>(sys.vm()).pageTable();
            double loads_per_walk =
                r.vmStats().uhandlerCalls
                    ? static_cast<double>(r.vmStats().pteLoads) /
                          static_cast<double>(r.vmStats().uhandlerCalls)
                    : 0.0;
            return InVivo{pt.numBuckets(), pt.crtEntries(),
                          pt.avgChainLength(), pt.searchDepth().mean(),
                          loads_per_walk, r.vmcpi()};
        });

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        TextTable table;
        table.setHeader({"ratio", "buckets", "avg chain", "avg search",
                         "CRT entries", "pte loads/walk", "VMCPI"});
        for (std::size_t ri = 0; ri < std::size(ratios); ++ri) {
            const InVivo &row = rows[wi * std::size(ratios) + ri];
            table.addRow({std::to_string(ratios[ri]) + ":1",
                          std::to_string(row.buckets),
                          TextTable::fmt(row.avg_chain, 3),
                          TextTable::fmt(row.avg_search, 3),
                          std::to_string(row.crt),
                          TextTable::fmt(row.loads_per_walk, 3),
                          TextTable::fmt(row.vmcpi, 5)});
        }
        std::cout << workloads[wi] << " (" << instrs
                  << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: the 2:1 row's average chain length "
                 "sits near the paper's\n1.25 (gcc measured ~1.3); "
                 "denser tables (1:1) lengthen chains and raise\n"
                 "per-walk PTE loads, sparser tables (4:1) shorten "
                 "them.\n";
    return 0;
}
