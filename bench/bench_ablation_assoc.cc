/**
 * @file
 * Ablation A1: cache associativity. The paper deliberately simulates
 * direct-mapped caches ("set associative or unified caches, while
 * giving better performance, would add too many variables") and notes
 * that page-table hotspotting "is easily solved with set
 * associativity". This ablation quantifies both claims: MCPI and
 * VMCPI at 1/2/4-way L1 and L2 for each system, with the way count
 * riding the SweepSpec variant axis.
 *
 * Usage: bench_ablation_assoc [--csv] [--instructions=N] [--jobs=N]
 *        [--seeds=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);

    banner("Ablation: cache associativity (paper simulates "
           "direct-mapped only)");
    std::cout << "caches: 64KB/1MB, 64/128B lines, LRU replacement for "
                 "associative configs\n\n";

    std::vector<ConfigVariant> variants;
    for (unsigned assoc : {1u, 2u, 4u})
        variants.push_back({std::to_string(assoc) + "way",
                            [assoc](SimConfig &cfg) {
                                cfg.l1.assoc = assoc;
                                cfg.l2.assoc = assoc;
                                cfg.l1.repl = CacheRepl::LRU;
                                cfg.l2.repl = CacheRepl::LRU;
                            }});

    SweepSpec spec = paperSweep(opts);
    spec.systems(paperVmSystems())
        .workloads({"gcc", "vortex"})
        .variants(variants);
    SweepResults res = runSweep(opts, spec);

    for (std::size_t wi = 0; wi < spec.workloadAxis().size(); ++wi) {
        TextTable table;
        table.setHeader({"system", "MCPI@1way", "MCPI@2way", "MCPI@4way",
                         "VMCPI@1way", "VMCPI@2way", "VMCPI@4way"});
        for (std::size_t ki = 0; ki < spec.systemAxis().size(); ++ki) {
            std::vector<std::string> row = {
                kindName(spec.systemAxis()[ki])};
            std::vector<std::string> vm_cells;
            for (std::size_t vi = 0; vi < variants.size(); ++vi) {
                CellIndex idx{.system = ki, .workload = wi,
                              .variant = vi};
                row.push_back(
                    TextTable::fmt(res.meanMetric(idx, mcpiOf), 4));
                vm_cells.push_back(
                    TextTable::fmt(res.meanMetric(idx, vmcpiOf), 5));
            }
            row.insert(row.end(), vm_cells.begin(), vm_cells.end());
            table.addRow(row);
        }
        std::cout << spec.workloadAxis()[wi] << " ("
                  << opts.instructions << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: associativity lowers VMCPI across "
                 "the board (page-table\nhotspots vanish, as the paper "
                 "predicts) and lowers MCPI for conflict-bound\n"
                 "workloads like gcc. Caveat: for cyclic access "
                 "patterns larger than the\ncache (vortex's cold "
                 "chase), LRU replacement thrashes where direct-mapped\n"
                 "placement retains a working fraction - MCPI can "
                 "rise with associativity.\n";
    return 0;
}
