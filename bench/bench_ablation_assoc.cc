/**
 * @file
 * Ablation A1: cache associativity. The paper deliberately simulates
 * direct-mapped caches ("set associative or unified caches, while
 * giving better performance, would add too many variables") and notes
 * that page-table hotspotting "is easily solved with set
 * associativity". This ablation quantifies both claims: MCPI and
 * VMCPI at 1/2/4-way L1 and L2 for each system.
 *
 * Usage: bench_ablation_assoc [--csv] [--instructions=N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace vmsim;
    using namespace vmsim::bench;

    BenchOptions opts = BenchOptions::parse(argc, argv);
    Counter instrs = opts.instructions;
    Counter warmup = opts.warmup;

    banner("Ablation: cache associativity (paper simulates "
           "direct-mapped only)");
    std::cout << "caches: 64KB/1MB, 64/128B lines, LRU replacement for "
                 "associative configs\n\n";

    for (const auto &workload : {std::string("gcc"),
                                 std::string("vortex")}) {
        TextTable table;
        table.setHeader({"system", "MCPI@1way", "MCPI@2way", "MCPI@4way",
                         "VMCPI@1way", "VMCPI@2way", "VMCPI@4way"});
        for (SystemKind kind : paperVmSystems()) {
            std::vector<std::string> row = {kindName(kind)};
            std::vector<std::string> vm_cells;
            for (unsigned assoc : {1u, 2u, 4u}) {
                SimConfig cfg = paperConfig(kind, 64_KiB, 64, 1_MiB,
                                            128, opts);
                cfg.l1.assoc = assoc;
                cfg.l2.assoc = assoc;
                cfg.l1.repl = CacheRepl::LRU;
                cfg.l2.repl = CacheRepl::LRU;
                Results r = runOnce(cfg, workload, instrs, warmup);
                row.push_back(TextTable::fmt(r.mcpi(), 4));
                vm_cells.push_back(TextTable::fmt(r.vmcpi(), 5));
            }
            row.insert(row.end(), vm_cells.begin(), vm_cells.end());
            table.addRow(row);
        }
        std::cout << workload << " (" << instrs << " instructions)\n";
        emit(table, opts);
    }

    std::cout << "Expected shape: associativity lowers VMCPI across "
                 "the board (page-table\nhotspots vanish, as the paper "
                 "predicts) and lowers MCPI for conflict-bound\n"
                 "workloads like gcc. Caveat: for cyclic access "
                 "patterns larger than the\ncache (vortex's cold "
                 "chase), LRU replacement thrashes where direct-mapped\n"
                 "placement retains a working fraction - MCPI can "
                 "rise with associativity.\n";
    return 0;
}
