/**
 * @file
 * Figure 7 (paper): VMCPI vs L1 and L2 cache size and linesize —
 * VORTEX. Same sweep as Figure 6 on the database-style workload with
 * poor spatial locality; the paper notes the inverted table (PA-RISC)
 * fits both cache levels better here than the hierarchical tables.
 *
 * Usage: bench_fig7_vmcpi_vortex [--full] [--csv] [--instructions=N]
 */

#include "vmcpi_sweep.hh"

int
main(int argc, char **argv)
{
    return vmsim::bench::runVmcpiSweep("Figure 7", "vortex", argc, argv);
}
