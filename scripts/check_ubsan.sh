#!/bin/sh
# Build the simulator with UndefinedBehaviorSanitizer and run the
# suites that push the robustness machinery hardest: structured error
# paths, fault injection, checkpoint/resume, and the trace codec.
# Catches integer overflows, misaligned loads, and invalid enum casts
# (e.g. a corrupt trace op byte) that plain unit tests can miss.
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build-ubsan}

cmake -B "$BUILD_DIR" -S . -DVMSIM_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target error_test fault_test sweep_resume_test trace_test \
    sim_config_test check_fuzz vmsim_cli

# halt_on_error turns any UB report into a nonzero exit so set -eu
# fails the script instead of scrolling past a diagnostic.
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
export UBSAN_OPTIONS

"$BUILD_DIR"/tests/error_test
"$BUILD_DIR"/tests/fault_test
"$BUILD_DIR"/tests/sweep_resume_test
"$BUILD_DIR"/tests/trace_test
"$BUILD_DIR"/tests/sim_config_test
# The fuzzer's counter arithmetic and the fault tuples' error paths
# run under the same integer/enum strictness.
"$BUILD_DIR"/tests/check_fuzz

# Smoke test: a fault-injected CLI run must fail cleanly (exit 1 with
# a structured diagnostic), not trip UBSan or abort.
if "$BUILD_DIR"/examples/vmsim_cli --instructions=50000 \
    --inject-faults=corrupt=1.0,seed=7 > /dev/null 2>&1; then
    echo "expected fault-injected run to exit nonzero" >&2
    exit 1
fi

echo "UBSan checks passed."
