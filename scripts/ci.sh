#!/bin/sh
# The full local gate: the tier-1 build + unit-test suite, a smoke run
# of every bench binary, the batched-pipeline determinism check, the
# invariant/fuzz campaigns, the golden replay manifest, the hot-path
# kernel lint + perf smoke, then the three sanitizer builds (ASan,
# TSan, UBSan). Run this before merging anything that touches src/.
# Each stage uses its own build directory, so incremental reruns are
# cheap.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS=${1:-$(nproc)}

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench smoke =="
# One tiny sweep per bench binary: a flag or engine regression fails
# here in seconds, not in a user's hour-long reproduction run.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
for bench in build/bench/bench_*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name=$(basename "$bench")
    case "$name" in
    bench_micro)
        # Pipeline + multicore artifacts only; the full microbench
        # suite is manual.
        "$bench" --benchmark_filter=BM_TlbLookupHit \
            --pipeline-json="$SMOKE_DIR/BENCH_pipeline.json" \
            --multicore-json="$SMOKE_DIR/BENCH_multicore.json" \
            > /dev/null 2>&1
        test -s "$SMOKE_DIR/BENCH_pipeline.json"
        test -s "$SMOKE_DIR/BENCH_multicore.json"
        ;;
    bench_pressure)
        "$bench" --instructions=5000 --warmup=1000 --jobs=2 --csv \
            --pressure-json="$SMOKE_DIR/BENCH_pressure.json" \
            > "$SMOKE_DIR/$name.csv"
        test -s "$SMOKE_DIR/BENCH_pressure.json"
        ;;
    *)
        "$bench" --instructions=5000 --warmup=1000 --jobs=2 --csv \
            > "$SMOKE_DIR/$name.csv"
        ;;
    esac
done

echo "== batched pipeline determinism =="
# The trace cache and batched loop must not change a single output
# byte: the same grid with the cache off (and once more scalar+serial)
# must reproduce the cached parallel CSV exactly.
build/bench/bench_fig6_vmcpi_gcc --csv --instructions=20000 \
    --warmup=5000 --jobs=2 > "$SMOKE_DIR/fig6_cached.csv"
build/bench/bench_fig6_vmcpi_gcc --csv --instructions=20000 \
    --warmup=5000 --jobs=2 --trace-cache-mb=0 \
    > "$SMOKE_DIR/fig6_uncached.csv"
build/bench/bench_fig6_vmcpi_gcc --csv --instructions=20000 \
    --warmup=5000 --jobs=1 --trace-cache-mb=0 --batch=1 \
    > "$SMOKE_DIR/fig6_scalar.csv"
cmp "$SMOKE_DIR/fig6_cached.csv" "$SMOKE_DIR/fig6_uncached.csv"
cmp "$SMOKE_DIR/fig6_cached.csv" "$SMOKE_DIR/fig6_scalar.csv"

echo "== multicore determinism =="
# The quantum scheduler keeps scalar/batched and serial/parallel runs
# bit-identical at four cores, and bench_micro's multicore report must
# materialize alongside the pipeline artifact.
build/bench/bench_multicore --csv --instructions=20000 --warmup=5000 \
    --core-quantum=2000 --jobs=2 > "$SMOKE_DIR/mc_parallel.csv"
build/bench/bench_multicore --csv --instructions=20000 --warmup=5000 \
    --core-quantum=2000 --jobs=1 --batch=1 \
    > "$SMOKE_DIR/mc_scalar.csv"
cmp "$SMOKE_DIR/mc_parallel.csv" "$SMOKE_DIR/mc_scalar.csv"

echo "== invariant checks + differential fuzz =="
# Every organization must satisfy its conservation and Table-4 laws
# (docs/checking.md); exit 1 on any violation fails the gate.
for sys in ULTRIX MACH INTEL PA-RISC NOTLB BASE HW-INVERTED HW-MIPS SPUR; do
    build/examples/vmsim_cli --system="$sys" --instructions=50000 \
        --warmup=10000 --interval=10000 --check > /dev/null
done
# Seeded fuzz campaign: scalar/batched/observed/cached legs must agree
# on every counter, and the report must be byte-stable across reruns.
# Tuples draw TLB geometry (tlbEntries in {32, 64}) alongside ASID and
# L2-TLB settings, so the flat probe index's fill/evict/tombstone
# paths are fuzzed on every gate run.
build/examples/vmsim_cli --fuzz=200 --seed=12345 \
    --fuzz-report="$SMOKE_DIR/fuzz_a.json" > /dev/null
build/examples/vmsim_cli --fuzz=200 --seed=12345 \
    --fuzz-report="$SMOKE_DIR/fuzz_b.json" > /dev/null
cmp "$SMOKE_DIR/fuzz_a.json" "$SMOKE_DIR/fuzz_b.json"
# Multicore leg: every tuple pinned to four cores so the shootdown
# books and per-core conservation laws get fuzzed on every gate run.
build/examples/vmsim_cli --fuzz=50 --seed=12345 --cores=4 > /dev/null

echo "== memory pressure =="
# Every organization must satisfy the pressure laws (docs/pressure.md)
# — majorFaults + reusedFrames == pagesTouched chief among them —
# under a tight frame budget, with all three reclaim policies covered.
i=0
for sys in ULTRIX MACH INTEL PA-RISC NOTLB BASE HW-INVERTED HW-MIPS SPUR; do
    case $((i % 3)) in
    0) pol=fifo ;;
    1) pol=lru ;;
    *) pol=clock ;;
    esac
    build/examples/vmsim_cli --system="$sys" --instructions=200000 \
        --warmup=20000 --phys-mb=1 --reclaim="$pol" --check \
        > "$SMOKE_DIR/pressure_$sys.txt"
    i=$((i + 1))
done
# The budget genuinely bites: the summary must carry the pfCPI line
# (printed only when major-fault cycles were charged), and the run
# must have re-faulted evicted pages, not just demand-loaded them.
grep -q "pfCPI" "$SMOKE_DIR/pressure_ULTRIX.txt"
grep "pfCPI" "$SMOKE_DIR/pressure_ULTRIX.txt" |
    grep -qv " 0 writebacks" || {
        echo "pressure: no writebacks under --phys-mb=1" >&2
        exit 1
    }
# Budget-off identity: a binary carrying the pressure code, even with
# a --reclaim preference set, must reproduce the no-flag CSV exactly
# when no --phys-mb budget is given.
build/bench/bench_fig6_vmcpi_gcc --csv --instructions=20000 \
    --warmup=5000 --jobs=2 --reclaim=lru \
    > "$SMOKE_DIR/fig6_noflag_pressure.csv"
cmp "$SMOKE_DIR/fig6_cached.csv" "$SMOKE_DIR/fig6_noflag_pressure.csv"
# Budgeted runs keep the scalar/batched/parallel bit-identity promise.
build/bench/bench_pressure --csv --instructions=20000 --warmup=5000 \
    --jobs=2 --pressure-json="$SMOKE_DIR/pressure_parallel.json" \
    > "$SMOKE_DIR/pressure_parallel.csv"
build/bench/bench_pressure --csv --instructions=20000 --warmup=5000 \
    --jobs=1 --batch=1 --trace-cache-mb=0 \
    --pressure-json="$SMOKE_DIR/pressure_scalar.json" \
    > "$SMOKE_DIR/pressure_scalar.csv"
cmp "$SMOKE_DIR/pressure_parallel.csv" "$SMOKE_DIR/pressure_scalar.csv"
cmp "$SMOKE_DIR/pressure_parallel.json" "$SMOKE_DIR/pressure_scalar.json"

echo "== sweep telemetry =="
# A telemetry-enabled sweep must produce a valid Prometheus exposition
# and well-formed JSONL heartbeats whose final record accounts for the
# whole grid — and must not change a single byte of the sweep CSV.
build/bench/bench_fig6_vmcpi_gcc --csv --instructions=20000 \
    --warmup=5000 --jobs=2 --progress=0.2 \
    --progress-out="$SMOKE_DIR/fig6_progress.jsonl" \
    --metrics-out="$SMOKE_DIR/fig6_metrics.prom" \
    > "$SMOKE_DIR/fig6_telemetry.csv"
cmp "$SMOKE_DIR/fig6_cached.csv" "$SMOKE_DIR/fig6_telemetry.csv"
python3 - "$SMOKE_DIR/fig6_progress.jsonl" "$SMOKE_DIR/fig6_metrics.prom" <<'EOF'
import json, sys

jsonl_path, prom_path = sys.argv[1], sys.argv[2]

# Every heartbeat is one JSON object per line; the final one must
# account for the whole grid (done + failed == total, pending == 0).
records = []
with open(jsonl_path) as f:
    for n, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        for key in ("ts", "elapsed_s", "cells_total", "done", "failed",
                    "retried", "pending", "instrs", "instrs_per_sec",
                    "workers"):
            assert key in rec, f"line {n}: missing {key!r}"
        records.append(rec)
assert records, "no heartbeat records"
last = records[-1]
assert last["done"] + last["failed"] == last["cells_total"], last
assert last["pending"] == 0, last

# Tiny Prometheus text-format parser: every sample line must be
# "name[{labels}] value" with a float value, and every metric family
# must carry # HELP and # TYPE headers.
helped, typed, samples = set(), set(), 0
with open(prom_path) as f:
    for n, line in enumerate(f, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] == "gauge", f"line {n}: {line!r}"
            typed.add(parts[2])
            continue
        assert not line.startswith("#"), f"line {n}: {line!r}"
        name_part, _, value = line.rpartition(" ")
        float(value)
        name = name_part.split("{", 1)[0]
        base = name
        assert base in typed, f"line {n}: sample for untyped {base!r}"
        assert base in helped, f"line {n}: sample for unhelped {base!r}"
        samples += 1
expected = {"vmsim_sweep_cells_total", "vmsim_sweep_cells_done",
            "vmsim_sweep_cells_failed", "vmsim_sweep_cells_pending",
            "vmsim_sweep_instrs_total", "vmsim_sweep_eta_seconds"}
missing = expected - typed
assert not missing, f"missing metrics: {sorted(missing)}"
assert samples >= len(typed), "fewer samples than metric families"
print(f"telemetry ok: {len(records)} heartbeats, "
      f"{samples} prometheus samples")
EOF

echo "== crash-tolerant sharded sweeps =="
# Headline guarantee (docs/robustness.md): a supervised 4-worker run
# of a grid — every worker booby-trapped to SIGKILL itself with a torn
# final record, restarted by the supervisor with backoff — must merge
# to a CSV byte-identical to one uninterrupted single-process worker.
SHARD_ARGS="--instructions=20000 --seeds=8 --sweep-systems=ULTRIX,MACH"
build/examples/vmsim_cli $SHARD_ARGS \
    --shard-dir="$SMOKE_DIR/shard_base" > /dev/null 2>&1
build/examples/vmsim_cli $SHARD_ARGS \
    --shard-dir="$SMOKE_DIR/shard_base" --shard-merge \
    > "$SMOKE_DIR/shard_base.csv" 2> /dev/null
build/examples/vmsim_cli $SHARD_ARGS \
    --shard-dir="$SMOKE_DIR/shard_crash" --supervise=4 \
    --lease-seconds=1 --crash-after=after=6,torn=1 \
    > "$SMOKE_DIR/shard_crash.csv" 2> "$SMOKE_DIR/shard_crash.err"
# The supervisor must have actually seen kills and restarted workers.
grep -q "supervisor: worker" "$SMOKE_DIR/shard_crash.err"
cmp "$SMOKE_DIR/shard_base.csv" "$SMOKE_DIR/shard_crash.csv"
# Seeded kill campaigns: rounds of random SIGKILLs (torn tails
# included) against real forked workers; any journal-integrity or
# merge byte-identity violation exits 1 and fails the gate.
build/examples/vmsim_cli --crash-fuzz=50 --seed=12345 \
    --shard-dir="$SMOKE_DIR/crash_fuzz" \
    > "$SMOKE_DIR/crash_fuzz.json"
test -s "$SMOKE_DIR/crash_fuzz.json"

echo "== golden replay manifest =="
# Counters, event streams and interval series for all nine
# organizations at 1/2/4 cores must stay byte-identical to the
# committed manifest (docs: DESIGN.md "Hot-path data layout"). Any
# hot-path "optimization" that moves a single counter fails here.
scripts/golden_replay.sh build > "$SMOKE_DIR/golden_now.txt"
cmp tests/golden/replay_sha256.txt "$SMOKE_DIR/golden_now.txt"

echo "== kernel lint =="
# The devirtualized per-record kernels live between LINT-KERNEL-BEGIN
# and LINT-KERNEL-END markers. Virtual dispatch or node-based hash
# probes reappearing inside them is a silent hot-path regression: the
# code still passes every equivalence test, just slower. Fail instead.
for hot_hdr in src/os/vm_system.hh src/os/tlb_vm.hh; do
    test -f "$hot_hdr"
    grep -q "LINT-KERNEL-BEGIN" "$hot_hdr"
    region=$(awk '/LINT-KERNEL-BEGIN/,/LINT-KERNEL-END/' "$hot_hdr")
    if printf '%s\n' "$region" | grep -nE 'virtual|unordered_map'; then
        echo "kernel lint: virtual dispatch or unordered_map inside" \
             "a LINT-KERNEL region of $hot_hdr" >&2
        exit 1
    fi
    if printf '%s\n' "$region" | grep -nE '\.(instRef|dataRef)\('; then
        echo "kernel lint: per-record virtual instRef/dataRef call" \
             "inside a LINT-KERNEL region of $hot_hdr (use the" \
             "monomorphized instRefK/dataRefK kernels)" >&2
        exit 1
    fi
done
# The flat data-layout files must never regrow a node-based map
# (matching real uses — instantiations and includes — not prose in
# comments that explains what the flat layout replaced).
for hot_src in src/tlb/tlb.hh src/tlb/tlb.cc src/mem/phys_mem.hh \
               src/mem/phys_mem.cc src/mem/frame_pool.hh \
               src/mem/frame_pool.cc src/pt/intel_page_table.hh \
               src/pt/intel_page_table.cc src/pt/hashed_page_table.hh \
               src/pt/hashed_page_table.cc src/base/flat_hash.hh; do
    if grep -nE 'unordered_map[[:space:]]*<|include[[:space:]]*<unordered_map>' \
            "$hot_src"; then
        echo "kernel lint: unordered_map in hot file $hot_src" >&2
        exit 1
    fi
done

echo "== perf smoke =="
# The batched replay path must beat the scalar generate path within
# the same run (load-invariant), and must stay inside a tolerance
# band of the committed PR8 baseline. The band is wide (0.8x) so a
# loaded CI box does not flake, but a real devirtualization or layout
# regression — which costs integer factors, not percents — fails.
build/bench/bench_micro --benchmark_filter='^$' \
    --pipeline-json="$SMOKE_DIR/perf_pipeline.json" \
    --multicore-json="$SMOKE_DIR/perf_multicore.json" \
    --baseline-json=bench/baselines/BENCH_pipeline_pr8.json \
    2> /dev/null
python3 - "$SMOKE_DIR/perf_pipeline.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
modes = report["modes"]
scalar = modes["scalar_generate_ips"]
replay = modes["batched_replay_ips"]
assert replay >= scalar, (
    f"batched replay ({replay:.0f} instrs/s) slower than scalar "
    f"generate ({scalar:.0f} instrs/s)")
baseline = report["baseline"]
assert baseline["batched_replay_ips"] > 0, "unreadable baseline"
gain = baseline["batched_replay_gain"]
assert gain >= 0.8, (
    f"batched replay regressed to {gain:.2f}x of the committed "
    f"baseline {baseline['path']}")
print(f"perf smoke ok: batched replay {replay / scalar:.2f}x scalar, "
      f"{gain:.2f}x committed baseline")
EOF

echo "== sanitizers =="
scripts/check_asan.sh
scripts/check_tsan.sh
scripts/check_ubsan.sh

echo "ci.sh: all checks passed."
