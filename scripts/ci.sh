#!/bin/sh
# The full local gate: the tier-1 build + unit-test suite, then the
# three sanitizer builds (ASan, TSan, UBSan). Run this before merging
# anything that touches src/. Each stage uses its own build directory,
# so incremental reruns are cheap.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -eu

cd "$(dirname "$0")/.."
JOBS=${1:-$(nproc)}

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers =="
scripts/check_asan.sh
scripts/check_tsan.sh
scripts/check_ubsan.sh

echo "ci.sh: all checks passed."
