#!/bin/sh
# Build the simulator with AddressSanitizer and run the suites that
# exercise the observability stack (event sinks, exporters, interval
# sampler) plus a CLI smoke run that emits a Chrome trace and checks it
# parses as JSON. Catches buffer/lifetime bugs in the writers that
# plain unit tests can miss.
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build-asan}

cmake -B "$BUILD_DIR" -S . -DVMSIM_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target base_test obs_test simulator_test error_test fault_test \
    sweep_resume_test shard_test batch_test check_test check_fuzz \
    multicore_test pressure_test vmsim_cli

"$BUILD_DIR"/tests/base_test
"$BUILD_DIR"/tests/obs_test
"$BUILD_DIR"/tests/simulator_test
"$BUILD_DIR"/tests/error_test
"$BUILD_DIR"/tests/fault_test
"$BUILD_DIR"/tests/sweep_resume_test
# Fork-heavy crash-tolerance suite: stays out of the TSan script
# (fork + threads is a known TSan blind spot) but is ASan-clean.
"$BUILD_DIR"/tests/shard_test
# Lifetime checks on the zero-copy replay path: lent record
# pointers must stay inside the shared recording.
"$BUILD_DIR"/tests/batch_test
# The checker walks event/interval vectors owned by the run's sinks
# and the fuzzer churns trace-cache recordings across four legs per
# tuple — prime heap-lifetime territory.
"$BUILD_DIR"/tests/check_test
"$BUILD_DIR"/tests/check_fuzz
# Per-core TLB/cursor arrays and the shootdown broadcast walk across
# cores — exactly where an off-by-one core index would scribble.
"$BUILD_DIR"/tests/multicore_test
# FramePool recycles slots and frames through free lists while the
# eviction path walks TLBs and page tables — lifetime-bug territory.
"$BUILD_DIR"/tests/pressure_test

# Smoke test: a fully-instrumented CLI run whose Chrome trace must be
# valid JSON (python3 json.tool is the arbiter when available).
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
"$BUILD_DIR"/examples/vmsim_cli --instructions=50000 --warmup=10000 \
    --interval=10000 \
    --trace-events="$TRACE_DIR/events.jsonl" \
    --chrome-trace="$TRACE_DIR/trace.json" \
    --stats-json="$TRACE_DIR/stats.json" > /dev/null
test -s "$TRACE_DIR/events.jsonl"
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$TRACE_DIR/trace.json" > /dev/null
    python3 -m json.tool "$TRACE_DIR/stats.json" > /dev/null
fi

echo "ASan checks passed."
