#!/bin/sh
# Build the simulator with ThreadSanitizer and run the concurrency-
# sensitive test suites (thread pool, sweep engine) plus a small
# parallel bench sweep. Catches data races in the SweepRunner /
# ThreadPool / Logger stack that plain unit tests can miss.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DVMSIM_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target thread_pool_test sweep_test fault_test sweep_resume_test \
    batch_test check_fuzz multicore_test obs_test pressure_test \
    bench_mcpi_sweep

"$BUILD_DIR"/tests/thread_pool_test
"$BUILD_DIR"/tests/sweep_test
# The fault/resume suites drive the watchdog thread, per-cell cancel
# atomics, and the journal mutex — the racy-by-construction paths.
"$BUILD_DIR"/tests/fault_test
"$BUILD_DIR"/tests/sweep_resume_test
# batch_test hammers the TraceCache from concurrent sweep workers
# (promise/shared_future publication, budget accounting under the
# mutex) — the shared-recording paths TSan exists to check.
"$BUILD_DIR"/tests/batch_test
# The fuzzer's cached leg shares TraceCache recordings exactly like
# parallel sweep workers do.
"$BUILD_DIR"/tests/check_fuzz
# Multicore cells run inside parallel sweep workers; simulated cores
# share one VmSystem per worker, so TSan proves the sharing stops at
# the cell boundary.
"$BUILD_DIR"/tests/multicore_test
# Budgeted cells evict and shoot down across simulated cores inside
# parallel workers; the equivalence legs also share the TraceCache.
"$BUILD_DIR"/tests/pressure_test
# obs_test spins up the SweepTelemetry emitter thread against the
# per-worker atomic progress slots.
"$BUILD_DIR"/tests/obs_test
# --progress runs the telemetry thread concurrently with real sweep
# workers publishing through their slots.
"$BUILD_DIR"/bench/bench_mcpi_sweep --instructions=20000 \
    --warmup=5000 --jobs=4 --check --progress=0.1 \
    --progress-out="$BUILD_DIR/tsan_progress.jsonl" \
    --metrics-out="$BUILD_DIR/tsan_metrics.prom" > /dev/null

echo "TSan checks passed."
