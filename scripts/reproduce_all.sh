#!/bin/sh
# Reproduce every table/figure of the paper plus the ablations and
# extensions, writing one output file per experiment into results/.
#
# Usage: scripts/reproduce_all.sh [build-dir] [extra bench args...]
#   e.g. scripts/reproduce_all.sh build --full --instructions=5000000
#
# The default (reduced-grid) run finishes in a few minutes on one core;
# --full runs the complete Table-1 cross-product.

set -eu

BUILD="${1:-build}"
shift 2>/dev/null || true
OUT="results"

if [ ! -d "$BUILD/bench" ]; then
    echo "error: '$BUILD/bench' not found; build first:" >&2
    echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
    exit 1
fi

mkdir -p "$OUT"

for bench in "$BUILD"/bench/bench_*; do
    [ -x "$bench" ] || continue
    name=$(basename "$bench")
    echo "== $name"
    if [ "$name" = "bench_micro" ]; then
        "$bench" > "$OUT/$name.txt" 2>&1
    else
        "$bench" "$@" > "$OUT/$name.txt" 2>&1
    fi
done

echo "done: $(ls "$OUT" | wc -l) experiment outputs in $OUT/"
