#!/bin/sh
# Byte-identity manifest for the replay hot path (docs/checking.md,
# DESIGN.md "Hot-path data layout").  Runs every organization at cores
# {1,2,4} under a fixed adversarial config (context switches, ASID
# tagging, L2 TLB, interval sampling, latency collection) and prints a
# sha256 line per (org, cores) covering the summary JSON, the stats
# dump (counters + interval series + latency histograms), and the full
# event stream.  ci.sh cmp's the output against the committed
# tests/golden/replay_sha256.txt: any refactor that changes a single
# output byte — one counter, one event, one interval sample — fails
# the gate.  Regenerate the golden (only when an *intentional*
# behavior change lands) with:
#     scripts/golden_replay.sh > tests/golden/replay_sha256.txt
#
# Usage: scripts/golden_replay.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD=${1:-build}
CLI="$BUILD/examples/vmsim_cli"
[ -x "$CLI" ] || { echo "golden_replay: $CLI not built" >&2; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

sum() { sha256sum "$1" | cut -d' ' -f1; }

for sys in ULTRIX MACH INTEL PA-RISC NOTLB BASE HW-INVERTED HW-MIPS SPUR; do
    for cores in 1 2 4; do
        "$CLI" --system="$sys" --cores="$cores" \
            --instructions=10000 --warmup=2000 --interval=2500 \
            --ctx-switch=997 --asid-bits=6 --l2-tlb=64 --json \
            --stats-json="$TMP/stats.json" \
            --trace-events="$TMP/events.jsonl" \
            > "$TMP/summary.json"
        printf '%s cores=%s summary=%s stats=%s events=%s\n' \
            "$sys" "$cores" \
            "$(sum "$TMP/summary.json")" \
            "$(sum "$TMP/stats.json")" \
            "$(sum "$TMP/events.jsonl")"
    done
done
