/**
 * @file
 * Tests for the declarative sweep engine: SweepSpec grid indexing and
 * cell materialization, SweepRunner determinism (a parallel run's
 * SweepResults must be identical to a serial run's), seed statistics,
 * the new BenchOptions flags, and tryKindFromName().
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/logging.hh"
#include "core/sim_config.hh"
#include "core/sweep.hh"

namespace vmsim
{
namespace
{

SweepSpec
smallSpec()
{
    SimConfig base;
    base.l1 = CacheParams{8_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};
    base.seed = 7;

    SweepSpec spec;
    spec.base(base)
        .systems({SystemKind::Ultrix, SystemKind::Intel})
        .workloads({"gcc", "ijpeg"})
        .l1Sizes({4_KiB, 16_KiB})
        .seeds(2)
        .instructions(20'000)
        .warmup(2'000);
    return spec;
}

// ------------------------------------------------------------- SweepSpec

TEST(SweepSpec, GridDimensionsAndCellCount)
{
    SweepSpec spec = smallSpec();
    EXPECT_EQ(spec.systemDim(), 2u);
    EXPECT_EQ(spec.workloadDim(), 2u);
    EXPECT_EQ(spec.l1Dim(), 2u);
    EXPECT_EQ(spec.l2Dim(), 1u); // unset axis counts one
    EXPECT_EQ(spec.lineDim(), 1u);
    EXPECT_EQ(spec.seedDim(), 2u);
    EXPECT_EQ(spec.numCells(), 16u);

    EXPECT_EQ(SweepSpec{}.numCells(), 1u);
}

TEST(SweepSpec, FlatIndexRoundTrips)
{
    SweepSpec spec = smallSpec();
    for (std::size_t flat = 0; flat < spec.numCells(); ++flat) {
        CellIndex idx = spec.unflatten(flat);
        EXPECT_EQ(spec.flatIndex(idx), flat);
    }
    // Grid order: seed is the innermost axis.
    EXPECT_EQ(spec.unflatten(0).seed, 0u);
    EXPECT_EQ(spec.unflatten(1).seed, 1u);
    EXPECT_EQ(spec.unflatten(0), (CellIndex{}));
}

TEST(SweepSpec, OutOfRangeIndexPanics)
{
    SweepSpec spec = smallSpec();
    setQuiet(true);
    EXPECT_THROW(spec.flatIndex({.system = 2}), PanicError);
    EXPECT_THROW(spec.unflatten(spec.numCells()), PanicError);
    setQuiet(false);
}

TEST(SweepSpec, CellAppliesAxesVariantsAndSeedOffset)
{
    std::vector<ConfigVariant> variants = {
        {"deep", [](SimConfig &cfg) { cfg.tlbEntries = 16; }},
        {"wide", [](SimConfig &cfg) { cfg.tlbEntries = 512; }},
    };
    SweepSpec spec = smallSpec();
    spec.lineSizes({{16, 32}, {64, 128}})
        .interruptCosts({10, 200})
        .variants(variants);

    SweepCell cell = spec.cell(spec.flatIndex({.system = 1,
                                               .workload = 1,
                                               .l1 = 1,
                                               .line = 1,
                                               .interrupt = 1,
                                               .variant = 0,
                                               .seed = 1}));
    EXPECT_EQ(cell.config.kind, SystemKind::Intel);
    EXPECT_EQ(cell.workload, "ijpeg");
    EXPECT_EQ(cell.config.l1.sizeBytes, 16_KiB);
    EXPECT_EQ(cell.config.l1.lineSize, 64u);
    EXPECT_EQ(cell.config.l2.lineSize, 128u);
    EXPECT_EQ(cell.config.costs.interruptCycles, 200u);
    EXPECT_EQ(cell.config.tlbEntries, 16u);
    EXPECT_EQ(cell.config.seed, 8u); // base 7 + seed index 1
}

TEST(SweepSpec, UnsetAxesKeepBaseConfig)
{
    SimConfig base;
    base.kind = SystemKind::Parisc;
    base.l1 = CacheParams{8_KiB, 32};
    base.l2 = CacheParams{2_MiB, 64};

    SweepSpec spec;
    spec.base(base);
    SweepCell cell = spec.cell(0);
    EXPECT_EQ(cell.config.kind, SystemKind::Parisc);
    EXPECT_EQ(cell.config.l1.sizeBytes, 8_KiB);
    EXPECT_EQ(cell.config.l2.sizeBytes, 2_MiB);
    EXPECT_EQ(cell.workload, "gcc"); // default workload
}

// ----------------------------------------------------------- SweepRunner

TEST(SweepRunner, ParallelRunMatchesSerialExactly)
{
    SweepSpec spec = smallSpec();
    SweepResults serial = SweepRunner(1).run(spec);
    SweepResults parallel = SweepRunner(4).run(spec);

    ASSERT_EQ(serial.size(), spec.numCells());
    ASSERT_EQ(parallel.size(), spec.numCells());
    for (std::size_t flat = 0; flat < spec.numCells(); ++flat) {
        const Results &a = serial.at(flat);
        const Results &b = parallel.at(flat);
        // Bitwise-equal metrics, not approximately equal: the whole
        // point of grid-ordered results is byte-identical output.
        EXPECT_EQ(a.totalCpi(), b.totalCpi()) << "cell " << flat;
        EXPECT_EQ(a.mcpi(), b.mcpi()) << "cell " << flat;
        EXPECT_EQ(a.vmcpi(), b.vmcpi()) << "cell " << flat;
        EXPECT_EQ(a.userInstrs(), b.userInstrs()) << "cell " << flat;
        EXPECT_EQ(a.vmStats().itlbMisses, b.vmStats().itlbMisses)
            << "cell " << flat;
        EXPECT_EQ(a.vmStats().dtlbMisses, b.vmStats().dtlbMisses)
            << "cell " << flat;
        EXPECT_EQ(a.vmStats().pteLoads, b.vmStats().pteLoads)
            << "cell " << flat;
    }
}

TEST(SweepRunner, JobsZeroMeansHardwareConcurrency)
{
    EXPECT_EQ(SweepRunner(0).jobs(), ThreadPool::defaultThreads());
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, SeedReplicationsDiffer)
{
    SimConfig base;
    base.kind = SystemKind::Ultrix;
    base.l1 = CacheParams{4_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};

    SweepSpec spec;
    spec.base(base).workloads({"gcc"}).seeds(3).instructions(20'000)
        .warmup(2'000);
    SweepResults res = SweepRunner(2).run(spec);

    // Different seeds must produce different traces.
    EXPECT_NE(res.at({.seed = 0}).vmStats().dtlbMisses,
              res.at({.seed = 1}).vmStats().dtlbMisses);

    SeedStats stats = res.seedStats(
        CellIndex{}, [](const Results &r) { return r.vmcpi(); });
    EXPECT_EQ(stats.seeds, 3u);
    EXPECT_LE(stats.min, stats.mean);
    EXPECT_LE(stats.mean, stats.max);
    EXPECT_GE(stats.stddev, 0.0);

    // meanMetric at a fixed cell with one seed is the cell's value.
    EXPECT_EQ(res.meanMetric({.seed = 0},
                             [](const Results &) { return 1.25; }),
              1.25);
}

// ---------------------------------------------------------- BenchOptions

TEST(BenchOptions, ParsesJobsSeedsAndWarmup)
{
    const char *argv[] = {"prog", "--jobs=4", "--seeds=3",
                          "--warmup=100", "--instructions=5000"};
    BenchOptions opts =
        BenchOptions::parse(5, const_cast<char **>(argv));
    EXPECT_EQ(opts.jobs, 4u);
    EXPECT_EQ(opts.seeds, 3u);
    ASSERT_TRUE(opts.warmup.has_value());
    EXPECT_EQ(*opts.warmup, 100u);
    EXPECT_EQ(opts.resolvedWarmup(), 100u);
}

TEST(BenchOptions, WarmupDefaultsToQuarterInstructions)
{
    // Every layer resolves an unspecified warmup through the single
    // defaultWarmup() helper: one quarter of the measured run, the
    // same default runOnce() applies. (It was instructions/2 here and
    // instructions/4 in runOnce once — this pins the unification.)
    const char *argv[] = {"prog", "--instructions=5000"};
    BenchOptions opts =
        BenchOptions::parse(2, const_cast<char **>(argv));
    EXPECT_FALSE(opts.warmup.has_value());
    EXPECT_EQ(opts.resolvedWarmup(), defaultWarmup(5000));
    EXPECT_EQ(opts.resolvedWarmup(), 1250u);

    setQuiet(true);
    const char *bad[] = {"prog", "--seeds=0"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(bad)),
                 FatalError);
    setQuiet(false);
}

// ------------------------------------------------------- tryKindFromName

TEST(TryKindFromName, KnownAndUnknownNames)
{
    EXPECT_EQ(tryKindFromName("ULTRIX"), SystemKind::Ultrix);
    EXPECT_EQ(tryKindFromName("pa-risc"), SystemKind::Parisc);
    EXPECT_EQ(tryKindFromName("hw-inverted"), SystemKind::HwInverted);
    EXPECT_EQ(tryKindFromName("VAX"), std::nullopt);
    EXPECT_EQ(tryKindFromName(""), std::nullopt);

    // kindFromName stays fatal on unknown names.
    setQuiet(true);
    EXPECT_THROW(kindFromName("VAX"), FatalError);
    setQuiet(false);
    EXPECT_EQ(kindFromName("mach"), SystemKind::Mach);
}

} // anonymous namespace
} // namespace vmsim
