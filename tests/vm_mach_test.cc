/**
 * @file
 * Tests for MachVm: the three-level nested refill (paper Table 4:
 * 10 / 20 / 500-instruction handlers, 10 administrative loads on the
 * root path), protected-slot usage for kernel mappings, and the decay
 * of nesting depth as intermediate mappings become resident.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/mach_vm.hh"

namespace vmsim
{
namespace
{

struct Fixture
{
    Fixture()
        : mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64}),
          pm(8_MiB, 12),
          vm(mem, pm, TlbParams{128, 16, TlbRepl::Random},
             TlbParams{128, 16, TlbRepl::Random})
    {}

    MemSystem mem;
    PhysMem pm;
    MachVm vm;
};

TEST(MachVm, DefaultCostsMatchTable4)
{
    HandlerCosts c = MachVm::machDefaultCosts();
    EXPECT_EQ(c.userInstrs, 10u);
    EXPECT_EQ(c.kernelInstrs, 20u);
    EXPECT_EQ(c.rootInstrs, 500u);
    EXPECT_EQ(c.adminLoads, 10u);
}

TEST(MachVm, UnpartitionedTlbAblationWorks)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    MachVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().rhandlerCalls, 1u);
    Vpn upte_page = vm.pageTable().uptPageVpn(0x10000000 >> 12);
    EXPECT_TRUE(vm.dtlb()->contains(upte_page));
}

TEST(MachVm, ColdMissNestsThreeDeep)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 1u);
    EXPECT_EQ(s.khandlerCalls, 1u);
    EXPECT_EQ(s.rhandlerCalls, 1u);
    EXPECT_EQ(s.uhandlerInstrs, 10u);
    EXPECT_EQ(s.khandlerInstrs, 20u);
    EXPECT_EQ(s.rhandlerInstrs, 500u);
    EXPECT_EQ(s.interrupts, 3u);
    EXPECT_EQ(s.pteLoads, 3u);
    // Root path: 10 admin loads + 1 RPTE load, all charged root-level.
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteRoot).accesses, 11u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteKernel).accesses, 1u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteUser).accesses, 1u);
}

TEST(MachVm, SecondMissSameUptPageIsShallow)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    f.vm.dataRef(Access{0x10001000, 0, false}); // same UPT page
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 2u);
    EXPECT_EQ(s.khandlerCalls, 1u);
    EXPECT_EQ(s.rhandlerCalls, 1u);
    EXPECT_EQ(s.interrupts, 4u);
}

TEST(MachVm, DistantUptPageNestsToKernelOnly)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // A user page 8 MB away uses a different UPT page but (almost
    // certainly) the same KPT page, since one KPT page maps 4 MB of
    // kernel space = 2^10 UPT pages.
    f.vm.dataRef(Access{0x10800000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 2u);
    EXPECT_EQ(s.khandlerCalls, 2u);
    EXPECT_EQ(s.rhandlerCalls, 1u); // root not re-run
    EXPECT_EQ(s.interrupts, 5u);
}

TEST(MachVm, KernelMappingsGoToProtectedSlots)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    Vpn upte_page = f.vm.pageTable().uptPageVpn(0x10000000 >> 12);
    Vpn kpte_page = f.vm.pageTable().kptPageVpn(upte_page);
    ASSERT_TRUE(f.vm.dtlb()->contains(upte_page));
    ASSERT_TRUE(f.vm.dtlb()->contains(kpte_page));
    // Flood normal slots within the already-mapped 4 MB segment.
    for (int i = 1; i < 300; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    EXPECT_TRUE(f.vm.dtlb()->contains(kpte_page));
}

TEST(MachVm, RootPathIsExpensive)
{
    // The distinguishing feature of the MACH simulation: the root
    // path costs an order of magnitude more than the others.
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_GT(s.rhandlerInstrs, 10 * (s.uhandlerInstrs +
                                      s.khandlerInstrs));
}

TEST(MachVm, PidSeparatesUptPlacement)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    MachVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16},
              MachVm::machDefaultCosts(), 12, 1);
    EXPECT_EQ(vm.pageTable().pid(), 1u);
    EXPECT_EQ(vm.pageTable().uptBase(), kMachUptRegion + 2_MiB);
}

TEST(MachVm, TlbHitIsFree)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    VmStats before = f.vm.vmStats();
    for (int i = 0; i < 10; ++i)
        f.vm.dataRef(Access{0x10000000 + i * 8, 0, false});
    EXPECT_EQ(f.vm.vmStats().interrupts, before.interrupts);
}

TEST(MachVm, HandlerBasesAreDistinctPages)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_TRUE(f.mem.l1i().probe(kUserHandlerBase));
    EXPECT_TRUE(f.mem.l1i().probe(kKernelHandlerBase));
    EXPECT_TRUE(f.mem.l1i().probe(kRootHandlerBase));
}

TEST(MachVm, Name)
{
    Fixture f;
    EXPECT_EQ(f.vm.name(), "MACH");
}

} // anonymous namespace
} // namespace vmsim
