/**
 * @file
 * Tests for IntelVm: the hardware-managed refill (paper Table 4:
 * 7 cycles, exactly 2 PTE loads, no interrupt, no I-cache or I-TLB
 * impact), unpartitioned TLBs, and per-walk cost accumulation.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/intel_vm.hh"

namespace vmsim
{
namespace
{

struct Fixture
{
    Fixture()
        : mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64}),
          pm(8_MiB, 12),
          vm(mem, pm, TlbParams{128, 0, TlbRepl::Random},
             TlbParams{128, 0, TlbRepl::Random})
    {}

    MemSystem mem;
    PhysMem pm;
    IntelVm vm;
};

TEST(IntelVm, RejectsPartitionedTlb)
{
    setQuiet(true);
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    EXPECT_THROW(IntelVm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16}),
                 FatalError);
    setQuiet(false);
}

TEST(IntelVm, WalkIsSevenCyclesTwoLoadsNoInterrupt)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.hwWalks, 1u);
    EXPECT_EQ(s.hwWalkCycles, 7u);
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_EQ(s.pteLoads, 2u);
    EXPECT_EQ(s.uhandlerCalls, 0u);
    EXPECT_EQ(s.uhandlerInstrs, 0u);
}

TEST(IntelVm, NoInstructionCacheImpact)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // The FSM fetches no instructions: the I-side never sees handler
    // traffic.
    EXPECT_EQ(f.mem.stats().instOf(AccessClass::HandlerFetch).accesses,
              0u);
    EXPECT_FALSE(f.mem.l1i().probe(kUserHandlerBase));
}

TEST(IntelVm, ExactlyTwoMemoryReferencesEveryWalk)
{
    // "on every TLB miss the hardware makes exactly two memory
    // references" — even when mappings were walked before.
    Fixture f;
    for (int i = 0; i < 200; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.hwWalks, 200u);
    EXPECT_EQ(s.pteLoads, 400u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteRoot).accesses, 200u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteUser).accesses, 200u);
    EXPECT_EQ(s.hwWalkCycles, 1400u);
}

TEST(IntelVm, RootEntriesNotCachedInTlb)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // Nothing besides the user page enters the D-TLB: the root level
    // is accessed physically each time.
    EXPECT_EQ(f.vm.dtlb()->validEntries(), 1u);
    EXPECT_TRUE(f.vm.dtlb()->contains(0x10000000 >> 12));
}

TEST(IntelVm, PteLoadsAreCacheable)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    Counter misses_before =
        f.mem.stats().dataOf(AccessClass::PteUser).l1Misses;
    // A neighbor page's PTE shares the same PTE-page line region:
    // likely a D-cache hit, and never an I-cache access.
    f.vm.dataRef(Access{0x10001000, 0, false});
    Counter misses_after =
        f.mem.stats().dataOf(AccessClass::PteUser).l1Misses;
    EXPECT_EQ(misses_after, misses_before); // adjacent PTE, same line
}

TEST(IntelVm, TlbHitBypassesWalk)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    f.vm.dataRef(Access{0x10000040, 0, false});
    EXPECT_EQ(f.vm.vmStats().hwWalks, 1u);
}

TEST(IntelVm, ITlbMissAlsoHardwareWalked)
{
    Fixture f;
    f.vm.instRef(Access{0x00400000});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.hwWalks, 1u);
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_TRUE(f.vm.itlb()->contains(0x00400000 >> 12));
}

TEST(IntelVm, AllTlbSlotsAvailableForUserPtes)
{
    // With no partition, 128 distinct pages all fit.
    Fixture f;
    for (int i = 0; i < 128; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    EXPECT_EQ(f.vm.dtlb()->validEntries(), 128u);
    EXPECT_EQ(f.vm.vmStats().hwWalks, 128u);
    // All still resident: a second pass walks nothing.
    for (int i = 0; i < 128; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    EXPECT_EQ(f.vm.vmStats().hwWalks, 128u);
}

TEST(IntelVm, CustomFsmCycles)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    HandlerCosts costs;
    costs.hwWalkCycles = 11;
    IntelVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0}, costs);
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().hwWalkCycles, 11u);
}

TEST(IntelVm, Name)
{
    Fixture f;
    EXPECT_EQ(f.vm.name(), "INTEL");
}

} // anonymous namespace
} // namespace vmsim
