/**
 * @file
 * Unit tests for the base module: intmath, bitfield, logging, random,
 * stats, and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "base/bitfield.hh"
#include "base/intmath.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/units.hh"

namespace vmsim
{
namespace
{

// ---------------------------------------------------------------- intmath

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
    EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOf2(~std::uint64_t{0}));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(4095), 11u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 63), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(IntMath, FloorCeilAgreeOnPowersOf2)
{
    for (unsigned b = 0; b < 63; ++b) {
        std::uint64_t v = std::uint64_t{1} << b;
        EXPECT_EQ(floorLog2(v), ceilLog2(v)) << "bit " << b;
    }
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(12, 3), 4u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_EQ(alignUp(0x12000, 0x1000), 0x12000u);
    EXPECT_TRUE(isAligned(0x12000, 0x1000));
    EXPECT_FALSE(isAligned(0x12001, 0x1000));
}

// --------------------------------------------------------------- bitfield

TEST(Bitfield, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xfffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bitfield, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 0), 1u);
    EXPECT_EQ(bits(0x80000000u, 31), 1u);
    EXPECT_EQ(bits(0x80000000u, 30), 0u);
}

TEST(Bitfield, Mbits)
{
    EXPECT_EQ(mbits(0xdeadbeef, 15, 8), 0xbe00u);
    EXPECT_EQ(mbits(0xff, 3, 0), 0xfu);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0x1200, 15, 8, 0x34), 0x3400u);
}

TEST(Bitfield, BitsInsertRoundTrip)
{
    std::uint64_t v = 0x0123456789abcdefULL;
    for (unsigned first = 0; first < 60; first += 7) {
        unsigned last = first + 5;
        std::uint64_t field = bits(v, last, first);
        EXPECT_EQ(insertBits(v, last, first, field), v);
    }
}

TEST(Bitfield, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t{0}), 64u);
}

// ------------------------------------------------------------------ units

TEST(Units, Literals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(64_KiB, 65536u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, 0x80000000u);
}

// ---------------------------------------------------------------- logging

TEST(Logging, PanicThrowsPanicError)
{
    setQuiet(true);
    EXPECT_THROW(panic("boom ", 42), PanicError);
    setQuiet(false);
}

TEST(Logging, FatalThrowsFatalError)
{
    setQuiet(true);
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
    setQuiet(false);
}

TEST(Logging, MessageConcatenation)
{
    setQuiet(true);
    try {
        fatal("value=", 7, " name=", "abc");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=abc");
    }
    setQuiet(false);
}

TEST(Logging, ConditionalHelpers)
{
    setQuiet(true);
    EXPECT_NO_THROW(panicIf(false, "never"));
    EXPECT_NO_THROW(fatalIf(false, "never"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
    setQuiet(false);
}

TEST(Logging, FatalIsNotPanic)
{
    setQuiet(true);
    // The two error classes must stay distinguishable for callers.
    EXPECT_THROW(
        {
            try {
                fatal("user error");
            } catch (const PanicError &) {
                FAIL() << "fatal threw PanicError";
            }
        },
        FatalError);
    setQuiet(false);
}

// ----------------------------------------------------------------- random

TEST(Random, DeterministicFromSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, ZeroSeedWorks)
{
    Random r(0);
    // Must not get stuck at zero.
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 16; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 14u);
}

TEST(Random, UniformBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniform(17), 17u);
}

TEST(Random, UniformCoversRange)
{
    Random r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.uniform(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformRangeInclusive)
{
    Random r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = r.uniformRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        hit_lo |= (v == 3);
        hit_hi |= (v == 6);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Random, UniformRealInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double v = r.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Random, ChanceFrequency)
{
    Random r(17);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 50000.0, 0.25, 0.01);
}

TEST(Random, GeometricMean)
{
    Random r(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.5));
    // E[failures before success] = (1-p)/p = 1.
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Random, GeometricCap)
{
    Random r(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(r.geometric(1e-12, 50), 50u);
    EXPECT_EQ(r.geometric(0.0, 10), 10u);
    EXPECT_EQ(r.geometric(1.0), 0u);
}

// ------------------------------------------------------------------ stats

TEST(Distribution, Empty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.sample(5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.mean(), 5.0);
    EXPECT_EQ(d.min(), 5.0);
    EXPECT_EQ(d.max(), 5.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Distribution, KnownMoments)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.variance(), 4.0, 1e-12);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(d.sum(), 40.0);
}

TEST(Distribution, Reset)
{
    Distribution d;
    d.sample(1.0);
    d.sample(2.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
    d.sample(10.0);
    EXPECT_EQ(d.min(), 10.0);
}

TEST(Distribution, NegativeValues)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(3.0);
    EXPECT_EQ(d.min(), -3.0);
    EXPECT_EQ(d.max(), 3.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Histogram, Bucketing)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.0);  // bucket 0
    h.sample(1.99); // bucket 0
    h.sample(2.0);  // bucket 1
    h.sample(9.99); // bucket 4
    h.sample(-1.0); // underflow
    h.sample(10.0); // overflow (hi is exclusive)
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.0);
}

TEST(Histogram, InvalidConstruction)
{
    setQuiet(true);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), FatalError);
    setQuiet(false);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 10.0, 2);
    h.sample(1.0);
    h.sample(100.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
}

TEST(CounterGroup, AddAndGet)
{
    CounterGroup g;
    EXPECT_EQ(g.get("x"), 0u);
    g.add("x");
    g.add("x", 4);
    g.add("y", 2);
    EXPECT_EQ(g.get("x"), 5u);
    EXPECT_EQ(g.get("y"), 2u);
    EXPECT_EQ(g.entries().size(), 2u);
    EXPECT_EQ(g.entries()[0].first, "x");
}

TEST(CounterGroup, Reset)
{
    CounterGroup g;
    g.add("a", 3);
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_TRUE(g.entries().empty());
}

// ------------------------------------------------------------------ table

TEST(TextTable, AlignedOutput)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_EQ(t.numCols(), 3u);
}

TEST(TextTable, OverlongRowPanics)
{
    setQuiet(true);
    TextTable t;
    t.setHeader({"a"});
    EXPECT_THROW(t.addRow({"1", "2"}), PanicError);
    EXPECT_THROW(
        {
            TextTable u;
            u.addRow({"1"});
        },
        PanicError);
    setQuiet(false);
}

TEST(TextTable, CsvQuoting)
{
    TextTable t;
    t.setHeader({"k", "v"});
    t.addRow({"has,comma", "has\"quote"});
    std::ostringstream oss;
    t.printCsv(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(1.0, 3), "1.000");
}


// ------------------------------------------------------------------- json

TEST(Json, Scalars)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
              "-1"); // u64 above int64 range wraps; use doubles there
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
    EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects)
{
    Json arr = Json::array();
    arr.push(1).push("two").push(Json());
    EXPECT_EQ(arr.dump(), "[1,\"two\",null]");

    Json obj = Json::object();
    obj.set("a", 1);
    obj.set("b", Json::array().push(2));
    EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[2]}");
}

TEST(Json, SetOverwritesInPlace)
{
    Json obj = Json::object();
    obj.set("k", 1);
    obj.set("other", 2);
    obj.set("k", 3);
    EXPECT_EQ(obj.dump(), "{\"k\":3,\"other\":2}");
}

TEST(Json, NullConvertsOnFirstUse)
{
    Json j;
    j.push(1);
    EXPECT_EQ(j.dump(), "[1]");
    Json o;
    o.set("x", 1);
    EXPECT_EQ(o.dump(), "{\"x\":1}");
}

TEST(Json, TypeMisusePanics)
{
    setQuiet(true);
    Json arr = Json::array();
    EXPECT_THROW(arr.set("k", 1), PanicError);
    Json obj = Json::object();
    EXPECT_THROW(obj.push(1), PanicError);
    setQuiet(false);
}

TEST(Json, PrettyPrinting)
{
    Json obj = Json::object();
    obj.set("a", 1);
    std::string out = obj.dump(2);
    EXPECT_NE(out.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, QuotedEscapesForStreamingWriters)
{
    EXPECT_EQ(Json::quoted("plain"), "\"plain\"");
    EXPECT_EQ(Json::quoted("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Distribution, SingleNegativeSample)
{
    // min/max must initialize from the first sample even when it is
    // below the zero-initialized state.
    Distribution d;
    d.sample(-7.5);
    EXPECT_EQ(d.min(), -7.5);
    EXPECT_EQ(d.max(), -7.5);
    EXPECT_EQ(d.mean(), -7.5);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Distribution, AllNegativeSamples)
{
    Distribution d;
    for (double v : {-1.0, -2.0, -3.0})
        d.sample(v);
    EXPECT_EQ(d.min(), -3.0);
    EXPECT_EQ(d.max(), -1.0);
    EXPECT_DOUBLE_EQ(d.mean(), -2.0);
    EXPECT_DOUBLE_EQ(d.sum(), -6.0);
}

TEST(Histogram, AllSamplesOutOfRange)
{
    Histogram h(0.0, 10.0, 4);
    h.sample(-5.0);
    h.sample(-0.001);
    h.sample(10.0);
    h.sample(1e9);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucket(i), 0u);
}

TEST(Histogram, BucketLoCoversFullRange)
{
    Histogram h(2.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 2.0);
    // bucketLo(numBuckets) is the exclusive upper bound of the range.
    EXPECT_DOUBLE_EQ(h.bucketLo(h.numBuckets()), 10.0);
}

TEST(Histogram, NegativeRange)
{
    Histogram h(-10.0, -2.0, 4);
    h.sample(-9.0); // bucket 0
    h.sample(-3.0); // bucket 3
    h.sample(-11.0);
    h.sample(-1.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, LogSpacedBucketing)
{
    // Edges grow geometrically: [1,10) [10,100) [100,1000).
    Histogram h = Histogram::logSpaced(1.0, 1000.0, 3);
    EXPECT_TRUE(h.isLog());
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 1.0);
    EXPECT_NEAR(h.bucketLo(1), 10.0, 1e-9);
    EXPECT_NEAR(h.bucketLo(2), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 1000.0);
    h.sample(1.0);   // bucket 0
    h.sample(9.99);  // bucket 0
    h.sample(10.1);  // bucket 1
    h.sample(999.0); // bucket 2
    h.sample(0.5);   // underflow
    h.sample(1e6);   // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, LogSpacedRequiresPositiveLo)
{
    setQuiet(true);
    EXPECT_THROW(Histogram::logSpaced(0.0, 100.0, 4), FatalError);
    EXPECT_THROW(Histogram::logSpaced(-1.0, 100.0, 4), FatalError);
    setQuiet(false);
}

TEST(Histogram, MergeFoldsCountsAndChecksGeometry)
{
    Histogram a = Histogram::logSpaced(1.0, 100.0, 4);
    Histogram b = Histogram::logSpaced(1.0, 100.0, 4);
    a.sample(2.0);
    a.sample(200.0); // overflow
    b.sample(2.0);
    b.sample(0.1); // underflow
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.bucket(0), 2u);

    Histogram uniform(1.0, 100.0, 4);
    EXPECT_FALSE(a.sameGeometry(uniform));
    setQuiet(true);
    EXPECT_THROW(a.merge(uniform), FatalError);
    setQuiet(false);
}

TEST(Histogram, SubtractRemovesSnapshot)
{
    Histogram cur = Histogram::logSpaced(1.0, 100.0, 4);
    cur.sample(2.0);
    Histogram prev = cur; // snapshot
    cur.sample(50.0);
    cur.sample(50.0);
    cur.subtract(prev);
    EXPECT_EQ(cur.count(), 2u);
    EXPECT_EQ(cur.bucket(0), 0u);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h = Histogram::logSpaced(1.0, 100.0, 4);
    EXPECT_EQ(h.percentile(0.5), 0.0);
    EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(Histogram, PercentileSingleBucket)
{
    // All mass in one bucket: every percentile interpolates within it.
    Histogram h(0.0, 10.0, 5);
    for (int i = 0; i < 100; ++i)
        h.sample(3.0); // bucket 1 = [2, 4)
    const double p50 = h.percentile(0.5);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p50, 2.0);
    EXPECT_LE(p50, 4.0);
    EXPECT_GE(p99, p50);
    EXPECT_LE(p99, 4.0);
}

TEST(Histogram, PercentileMonotoneAndBounded)
{
    Histogram h = Histogram::logSpaced(1.0, 1e6, 24);
    for (double v : {2.0, 3.0, 17.0, 450.0, 9000.0, 2e6, 0.5})
        h.sample(v);
    // Overflow reports hi, underflow reports lo.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e6);
    double prev = 0.0;
    for (double p : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(CounterGroup, InsertionOrderSurvivesManyKeys)
{
    // The hash index must not disturb the reported entry order.
    CounterGroup g;
    std::vector<std::string> keys;
    for (int i = 0; i < 100; ++i)
        keys.push_back("key" + std::to_string((i * 37) % 100));
    for (const std::string &k : keys)
        g.add(k);
    ASSERT_EQ(g.entries().size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(g.entries()[i].first, keys[i]);
        EXPECT_EQ(g.get(keys[i]), 1u);
    }
}

TEST(CounterGroup, ReuseAfterReset)
{
    CounterGroup g;
    g.add("a", 3);
    g.add("b", 1);
    g.reset();
    g.add("b", 7);
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.get("b"), 7u);
    ASSERT_EQ(g.entries().size(), 1u);
    EXPECT_EQ(g.entries()[0].first, "b");
}

TEST(LogLevel, SetterReturnsPreviousAndGetterAgrees)
{
    LogLevel original = setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    EXPECT_EQ(setLogLevel(LogLevel::Silent), LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(original);
}

TEST(LogLevel, LevelsFilterWarnAndInform)
{
    // warn()/inform() write to stderr; redirect it to observe them.
    LogLevel original = logLevel();
    auto emits = [](LogLevel level) {
        setLogLevel(level);
        testing::internal::CaptureStderr();
        warn("w");
        inform("i");
        std::string out = testing::internal::GetCapturedStderr();
        return std::make_pair(out.find("warn: w") != std::string::npos,
                              out.find("info: i") != std::string::npos);
    };

    auto [warn_i, info_i] = emits(LogLevel::Info);
    EXPECT_TRUE(warn_i);
    EXPECT_TRUE(info_i);
    auto [warn_w, info_w] = emits(LogLevel::Warn);
    EXPECT_TRUE(warn_w);
    EXPECT_FALSE(info_w);
    auto [warn_s, info_s] = emits(LogLevel::Silent);
    EXPECT_FALSE(warn_s);
    EXPECT_FALSE(info_s);
    setLogLevel(original);
}

TEST(LogLevel, QuietOverridesLevel)
{
    LogLevel original = setLogLevel(LogLevel::Info);
    setQuiet(true);
    testing::internal::CaptureStderr();
    warn("suppressed");
    inform("suppressed");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setQuiet(false);
    setLogLevel(original);
}


TEST(Json, DoubleDumpParsesBackExactly)
{
    // Regression: numbers were emitted with %.10g, so doubles needing
    // more than 10 significant digits did not survive a dump/parse
    // round trip. The writer now picks the shortest round-trippable
    // precision.
    const double values[] = {
        0.1, 1.0 / 3.0, 2.0 / 3.0, 1e-17, 1e300, -2.5e-8,
        123456789.123456789, 3.141592653589793, 0.30000000000000004,
    };
    for (double v : values) {
        std::string text = Json(v).dump();
        auto parsed = Json::parse(text);
        ASSERT_TRUE(parsed.ok()) << text;
        EXPECT_EQ(parsed.value().asDouble(), v) << text;
    }
    // Short representations stay short.
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json(0.25).dump(), "0.25");
}

} // anonymous namespace
} // namespace vmsim
