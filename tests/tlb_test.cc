/**
 * @file
 * Tests for the TLB: lookup/insert semantics, the protected-slot
 * partition used by ULTRIX/MACH, replacement policies, capacity
 * behavior and statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "tlb/tlb.hh"

namespace vmsim
{
namespace
{

TlbParams
tp(unsigned entries, unsigned prot = 0, TlbRepl repl = TlbRepl::Random)
{
    TlbParams p;
    p.entries = entries;
    p.protectedSlots = prot;
    p.repl = repl;
    return p;
}

TEST(TlbParams, ToString)
{
    EXPECT_EQ(tp(128).toString(), "128-entry random");
    EXPECT_EQ(tp(128, 16).toString(), "128-entry (16 protected) random");
    EXPECT_EQ(tp(64, 0, TlbRepl::LRU).toString(), "64-entry LRU");
}

TEST(Tlb, InvalidConstruction)
{
    setQuiet(true);
    EXPECT_THROW(Tlb(tp(0)), FatalError);
    EXPECT_THROW(Tlb(tp(16, 16)), FatalError); // no normal slots left
    EXPECT_THROW(Tlb(tp(16, 20)), FatalError);
    setQuiet(false);
}

TEST(Tlb, MissThenHit)
{
    Tlb t(tp(8));
    EXPECT_FALSE(t.lookup(5));
    t.insert(5);
    EXPECT_TRUE(t.lookup(5));
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, ContainsDoesNotTouchStats)
{
    Tlb t(tp(8));
    t.insert(3);
    EXPECT_TRUE(t.contains(3));
    EXPECT_FALSE(t.contains(4));
    EXPECT_EQ(t.accesses(), 0u);
}

TEST(Tlb, DuplicateInsertIsRefresh)
{
    Tlb t(tp(8));
    t.insert(1);
    t.insert(1);
    t.insert(1);
    EXPECT_EQ(t.validEntries(), 1u);
}

TEST(Tlb, CapacityRespected)
{
    Tlb t(tp(8));
    for (Vpn v = 0; v < 100; ++v)
        t.insert(v);
    EXPECT_EQ(t.validEntries(), 8u);
}

TEST(Tlb, FittingWorkingSetNeverEvicted)
{
    Tlb t(tp(16));
    for (Vpn v = 0; v < 16; ++v)
        t.insert(v);
    for (Vpn v = 0; v < 16; ++v)
        EXPECT_TRUE(t.lookup(v));
    EXPECT_EQ(t.misses(), 0u);
}

TEST(Tlb, ProtectedSlotsSurviveNormalPressure)
{
    Tlb t(tp(32, 4));
    t.insertProtected(1000);
    t.insertProtected(1001);
    // Flood the normal region.
    for (Vpn v = 0; v < 500; ++v)
        t.insert(v);
    EXPECT_TRUE(t.contains(1000));
    EXPECT_TRUE(t.contains(1001));
}

TEST(Tlb, NormalSlotsSurviveProtectedPressure)
{
    Tlb t(tp(32, 4));
    t.insert(7);
    for (Vpn v = 2000; v < 2100; ++v)
        t.insertProtected(v);
    EXPECT_TRUE(t.contains(7));
    // Protected region bounded at 4 entries.
    EXPECT_LE(t.validEntries(), 5u);
}

TEST(Tlb, ProtectedInsertOnUnpartitionedPanics)
{
    setQuiet(true);
    Tlb t(tp(32, 0));
    EXPECT_THROW(t.insertProtected(1), PanicError);
    setQuiet(false);
}

TEST(Tlb, ProtectedEntriesHitViaLookup)
{
    Tlb t(tp(32, 4));
    t.insertProtected(99);
    EXPECT_TRUE(t.lookup(99));
}

TEST(Tlb, InvalidateSingle)
{
    Tlb t(tp(8));
    t.insert(1);
    t.insert(2);
    t.invalidate(1);
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
    EXPECT_EQ(t.validEntries(), 1u);
    // Invalidating a non-resident VPN is harmless.
    t.invalidate(42);
    EXPECT_EQ(t.validEntries(), 1u);
}

TEST(Tlb, InvalidateAll)
{
    Tlb t(tp(8, 2));
    t.insert(1);
    t.insertProtected(2);
    t.invalidateAll();
    EXPECT_EQ(t.validEntries(), 0u);
    EXPECT_FALSE(t.contains(1));
    EXPECT_FALSE(t.contains(2));
}

TEST(Tlb, MissRate)
{
    Tlb t(tp(8));
    EXPECT_EQ(t.missRate(), 0.0);
    t.lookup(1); // miss
    t.insert(1);
    t.lookup(1); // hit
    t.lookup(1); // hit
    t.lookup(2); // miss
    EXPECT_DOUBLE_EQ(t.missRate(), 0.5);
    t.resetStats();
    EXPECT_EQ(t.accesses(), 0u);
}

TEST(Tlb, LruEvictsLeastRecent)
{
    Tlb t(tp(4, 0, TlbRepl::LRU));
    for (Vpn v = 0; v < 4; ++v)
        t.insert(v);
    // Touch 0..2, leaving 3 least-recently-used.
    t.lookup(0);
    t.lookup(1);
    t.lookup(2);
    t.insert(10);
    EXPECT_FALSE(t.contains(3));
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(10));
}

TEST(Tlb, FifoEvictsOldestInsert)
{
    Tlb t(tp(4, 0, TlbRepl::FIFO));
    for (Vpn v = 0; v < 4; ++v)
        t.insert(v);
    // Touching entry 0 must NOT save it under FIFO... but our FIFO
    // stamps at fill time, so lookups don't refresh.
    t.lookup(0);
    t.insert(10);
    EXPECT_FALSE(t.contains(0));
    EXPECT_TRUE(t.contains(10));
}

TEST(Tlb, RandomReplacementEventuallyUsesAllSlots)
{
    Tlb t(tp(8), 7);
    std::set<Vpn> resident;
    for (Vpn v = 0; v < 10000; ++v) {
        t.insert(v);
        if (t.contains(v))
            resident.insert(v);
    }
    EXPECT_EQ(t.validEntries(), 8u);
}

TEST(Tlb, DeterministicGivenSeed)
{
    Tlb a(tp(8), 42), b(tp(8), 42);
    for (Vpn v = 0; v < 1000; ++v) {
        a.insert(v);
        b.insert(v);
    }
    for (Vpn v = 0; v < 1000; ++v)
        EXPECT_EQ(a.contains(v), b.contains(v)) << "vpn " << v;
}

TEST(Tlb, PaperGeometry)
{
    // The paper's MIPS-like configuration: 128 entries, 16 protected.
    Tlb t(tp(128, 16));
    for (Vpn v = 0; v < 112; ++v)
        t.insert(v);
    for (Vpn v = 1000; v < 1016; ++v)
        t.insertProtected(v);
    // Normal capacity is 112: all fit.
    for (Vpn v = 0; v < 112; ++v)
        EXPECT_TRUE(t.contains(v));
    EXPECT_EQ(t.validEntries(), 128u);
    // One more normal insert evicts exactly one normal entry.
    t.insert(5000);
    unsigned resident = 0;
    for (Vpn v = 0; v < 112; ++v)
        resident += t.contains(v);
    EXPECT_EQ(resident, 111u);
    // All protected entries intact.
    for (Vpn v = 1000; v < 1016; ++v)
        EXPECT_TRUE(t.contains(v));
}

// Replacement-policy sweep: basic invariants hold for all policies.
class TlbReplTest : public ::testing::TestWithParam<TlbRepl>
{};

TEST_P(TlbReplTest, InsertLookupInvariant)
{
    Tlb t(tp(16, 4, GetParam()));
    for (Vpn v = 0; v < 64; ++v) {
        t.insert(v);
        EXPECT_TRUE(t.contains(v)) << "just-inserted vpn evicted itself";
    }
    EXPECT_EQ(t.validEntries(), 12u + 0u); // 12 normal slots filled
}

TEST_P(TlbReplTest, ProtectedPartitionInvariant)
{
    Tlb t(tp(16, 4, GetParam()));
    for (Vpn v = 0; v < 100; ++v) {
        t.insertProtected(10000 + v);
        EXPECT_TRUE(t.contains(10000 + v));
    }
    // Protected flood never spills into normal slots.
    EXPECT_LE(t.validEntries(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Policies, TlbReplTest,
                         ::testing::Values(TlbRepl::Random, TlbRepl::LRU,
                                           TlbRepl::FIFO));


// --------------------------------------------------- set associativity

TEST(TlbSetAssoc, ParamsValidation)
{
    setQuiet(true);
    TlbParams p = tp(128);
    p.assoc = 3; // 128 % 3 != 0
    EXPECT_THROW(Tlb{p}, FatalError);
    p.assoc = 4;
    p.protectedSlots = 16; // partition requires fully associative
    EXPECT_THROW(Tlb{p}, FatalError);
    setQuiet(false);
}

TEST(TlbSetAssoc, SetConflictEvictsWithinSet)
{
    // 8 entries, 2-way -> 4 sets indexed by vpn low bits. Three VPNs
    // mapping to set 0 cannot all be resident.
    TlbParams p = tp(8);
    p.assoc = 2;
    Tlb t(p);
    t.insert(0x00); // set 0
    t.insert(0x04); // set 0
    t.insert(0x08); // set 0: evicts one of the two
    unsigned resident = t.contains(0x00) + t.contains(0x04) +
                        t.contains(0x08);
    EXPECT_EQ(resident, 2u);
    // Other sets untouched.
    t.insert(0x01);
    EXPECT_TRUE(t.contains(0x01));
    EXPECT_EQ(resident, t.contains(0x00) + t.contains(0x04) +
                            t.contains(0x08));
}

TEST(TlbSetAssoc, LruWithinSet)
{
    TlbParams p = tp(8, 0, TlbRepl::LRU);
    p.assoc = 2;
    Tlb t(p);
    t.insert(0x00);
    t.insert(0x04);
    t.lookup(0x00); // refresh
    t.insert(0x08); // evicts 0x04 (LRU)
    EXPECT_TRUE(t.contains(0x00));
    EXPECT_FALSE(t.contains(0x04));
}

TEST(TlbSetAssoc, FittingSetMappedWorkingSetHits)
{
    // 64 entries 4-way: 16 sets. 64 consecutive VPNs spread evenly,
    // 4 per set: everything fits.
    TlbParams p = tp(64);
    p.assoc = 4;
    Tlb t(p);
    for (Vpn v = 0; v < 64; ++v)
        t.insert(v);
    for (Vpn v = 0; v < 64; ++v)
        EXPECT_TRUE(t.contains(v)) << v;
    EXPECT_EQ(t.validEntries(), 64u);
}

TEST(TlbSetAssoc, ToString)
{
    TlbParams p = tp(64);
    p.assoc = 4;
    EXPECT_EQ(p.toString(), "64-entry 4-way random");
}

// -------------------------------------------------------------- ASIDs

TEST(TlbAsid, EntriesOnlyHitUnderOwnAsid)
{
    TlbParams p = tp(16);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(1);
    t.insert(100);
    EXPECT_TRUE(t.lookup(100));
    t.setCurrentAsid(2);
    EXPECT_FALSE(t.lookup(100)); // other address space
    t.setCurrentAsid(1);
    EXPECT_TRUE(t.lookup(100)); // survived the switch
}

TEST(TlbAsid, SameVpnDifferentAsidsCoexist)
{
    TlbParams p = tp(16);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(1);
    t.insert(100);
    t.setCurrentAsid(2);
    t.insert(100);
    EXPECT_EQ(t.validEntries(), 2u);
    EXPECT_TRUE(t.contains(100));
    t.setCurrentAsid(1);
    EXPECT_TRUE(t.contains(100));
}

TEST(TlbAsid, ProtectedEntriesAreGlobal)
{
    TlbParams p = tp(16, 4);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(3);
    t.insertProtected(999);
    t.setCurrentAsid(7);
    EXPECT_TRUE(t.lookup(999)) << "kernel mapping must hit any ASID";
}

TEST(TlbAsid, InvalidateAsidIsSelective)
{
    TlbParams p = tp(16, 2);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(1);
    t.insert(10);
    t.insertProtected(50);
    t.setCurrentAsid(2);
    t.insert(20);
    t.invalidateAsid(1);
    EXPECT_TRUE(t.contains(20));
    EXPECT_TRUE(t.lookup(50)); // global survives
    t.setCurrentAsid(1);
    EXPECT_FALSE(t.contains(10));
}

TEST(TlbAsid, TooManyAsidBitsRejected)
{
    setQuiet(true);
    TlbParams p = tp(16);
    p.asidBits = 16;
    EXPECT_THROW(Tlb{p}, FatalError);
    setQuiet(false);
}

TEST(TlbAsid, WorksWithSetAssociativity)
{
    TlbParams p = tp(16);
    p.assoc = 2;
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(1);
    t.insert(0x10);
    t.setCurrentAsid(2);
    EXPECT_FALSE(t.lookup(0x10));
    t.setCurrentAsid(1);
    EXPECT_TRUE(t.lookup(0x10));
}

// ------------------------------------------------------- evictRandom

TEST(TlbEvictRandom, EvictsRequestedCount)
{
    Tlb t(tp(32), 5);
    for (Vpn v = 0; v < 32; ++v)
        t.insert(v);
    unsigned evicted = t.evictRandom(10);
    EXPECT_EQ(evicted, 10u);
    EXPECT_EQ(t.validEntries(), 22u);
}

TEST(TlbEvictRandom, SparesProtectedRegion)
{
    Tlb t(tp(32, 8), 5);
    for (Vpn v = 0; v < 8; ++v)
        t.insertProtected(1000 + v);
    for (Vpn v = 0; v < 24; ++v)
        t.insert(v);
    t.evictRandom(100);
    for (Vpn v = 0; v < 8; ++v)
        EXPECT_TRUE(t.contains(1000 + v)) << v;
}

TEST(TlbEvictRandom, BoundedWhenMostlyEmpty)
{
    Tlb t(tp(32), 5);
    t.insert(1);
    unsigned evicted = t.evictRandom(10);
    EXPECT_LE(evicted, 1u);
}


// Regression: re-inserting a VPN that is resident as a *global*
// (protected) entry must refresh that entry, not create a duplicate
// normal entry under the current ASID — and invalidate() must drop
// the global entry too, or the mapping keeps hitting after being
// torn down.

TEST(TlbGlobalResidency, InsertRefreshesGlobalEntryInstead)
{
    TlbParams p = tp(16, 4);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(3);
    t.insertProtected(100);
    EXPECT_EQ(t.validEntries(), 1u);
    t.insert(100); // already hits via the global entry
    EXPECT_EQ(t.validEntries(), 1u)
        << "insert duplicated a VPN resident as a global entry";
}

TEST(TlbGlobalResidency, InvalidateDropsGlobalEntry)
{
    TlbParams p = tp(16, 4);
    p.asidBits = 4;
    Tlb t(p);
    t.setCurrentAsid(3);
    t.insertProtected(200);
    ASSERT_TRUE(t.contains(200));
    t.invalidate(200);
    EXPECT_FALSE(t.contains(200))
        << "global entry survived invalidate()";
}

TEST(TlbGlobalResidency, UntaggedProtectedInsertAndInvalidate)
{
    // Untagged TLBs key everything with ASID 0, so the single-key
    // paths must behave identically.
    Tlb t(tp(16, 4));
    t.insertProtected(300);
    t.insert(300);
    EXPECT_EQ(t.validEntries(), 1u);
    t.invalidate(300);
    EXPECT_FALSE(t.contains(300));
}

} // anonymous namespace
} // namespace vmsim
