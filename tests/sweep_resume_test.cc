/**
 * @file
 * Tests for sweep checkpoint/resume: the JSONL journal, the spec
 * fingerprint guard, tolerance of kill-truncated journals, and the
 * headline guarantee — a killed-and-resumed sweep produces a CSV
 * byte-identical to an uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/error.hh"
#include "base/logging.hh"
#include "base/units.hh"
#include "core/sweep.hh"

namespace vmsim
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempFile
{
  public:
    TempFile()
    {
        char tmpl[] = "/tmp/vmsim_journal_XXXXXX";
        int fd = mkstemp(tmpl);
        if (fd >= 0)
            ::close(fd);
        path_ = tmpl;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

SweepSpec
smallSpec()
{
    SimConfig base;
    base.l1 = CacheParams{4_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};
    SweepSpec spec;
    spec.base(base)
        .systems({SystemKind::Ultrix, SystemKind::Intel})
        .workloads({"gcc"})
        .l1Sizes({4_KiB, 16_KiB})
        .seeds(2)
        .instructions(20'000)
        .warmup(2'000);
    return spec;
}

std::string
csvOf(const SweepResults &res)
{
    std::ostringstream oss;
    res.writeCsv(oss);
    return oss.str();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path, const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &l : lines)
        out << l << '\n';
}

TEST(SpecFingerprint, StableAndSpecSensitive)
{
    SweepSpec a = smallSpec();
    SweepSpec b = smallSpec();
    EXPECT_EQ(specFingerprint(a), specFingerprint(b));

    b.instructions(30'000);
    EXPECT_NE(specFingerprint(a), specFingerprint(b));

    SweepSpec c = smallSpec();
    c.l1Sizes({4_KiB, 32_KiB});
    EXPECT_NE(specFingerprint(a), specFingerprint(c));
}

TEST(SweepResume, JournalWrittenAndFullResumeSkipsEveryCell)
{
    SweepSpec spec = smallSpec();
    TempFile journal;

    SweepResults first =
        SweepRunner(2).journal(journal.path()).run(spec);
    ASSERT_TRUE(first.allOk());
    std::string csv = csvOf(first);

    // Header + one line per completed cell.
    auto lines = readLines(journal.path());
    ASSERT_EQ(lines.size(), 1 + spec.numCells());
    EXPECT_NE(lines[0].find("vmsim-sweep-journal"), std::string::npos);

    SweepResults resumed =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    EXPECT_EQ(csvOf(resumed), csv);
    for (std::size_t i = 0; i < resumed.size(); ++i) {
        EXPECT_TRUE(resumed.outcomeAt(i).fromJournal) << "cell " << i;
        EXPECT_EQ(resumed.outcomeAt(i).attempts, 0u) << "cell " << i;
    }
}

TEST(SweepResume, KilledSweepResumesByteIdentical)
{
    SweepSpec spec = smallSpec();

    // The reference artifact: one uninterrupted run.
    TempFile ref;
    std::string cleanCsv =
        csvOf(SweepRunner(2).journal(ref.path()).run(spec));

    // Simulate a sweep killed partway: keep the journal header and the
    // first five completed cells, drop the rest.
    TempFile journal;
    SweepRunner(2).journal(journal.path()).run(spec);
    auto lines = readLines(journal.path());
    ASSERT_GT(lines.size(), 6u);
    lines.resize(6); // header + 5 cells
    writeLines(journal.path(), lines);

    SweepResults resumed =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(csvOf(resumed), cleanCsv);

    std::size_t fromJournal = 0;
    for (std::size_t i = 0; i < resumed.size(); ++i)
        if (resumed.outcomeAt(i).fromJournal)
            ++fromJournal;
    EXPECT_EQ(fromJournal, 5u);

    // The journal was topped up: a second resume loads every cell.
    SweepResults again =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    EXPECT_EQ(csvOf(again), cleanCsv);
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_TRUE(again.outcomeAt(i).fromJournal) << "cell " << i;
}

TEST(SweepResume, ToleratesAKillMidLine)
{
    SweepSpec spec = smallSpec();
    std::string cleanCsv = csvOf(SweepRunner(2).run(spec));

    TempFile journal;
    SweepRunner(2).journal(journal.path()).run(spec);

    // A kill mid-write leaves a partial trailing line with no newline.
    auto lines = readLines(journal.path());
    ASSERT_GT(lines.size(), 4u);
    std::string partial = lines[4].substr(0, lines[4].size() / 2);
    lines.resize(4); // header + 3 whole cells
    writeLines(journal.path(), lines);
    {
        std::ofstream out(journal.path(), std::ios::app);
        out << partial; // no '\n'
    }

    SweepResults resumed =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(csvOf(resumed), cleanCsv);
}

TEST(SweepResume, MidFileCorruptionIsRejected)
{
    // A bad line *followed by more records* is real corruption, not a
    // torn tail — resume must refuse rather than silently re-run the
    // damaged interior cells.
    SweepSpec spec = smallSpec();
    TempFile journal;
    SweepRunner(2).journal(journal.path()).run(spec);
    auto lines = readLines(journal.path());
    ASSERT_GT(lines.size(), 3u);
    lines[2] = "{\"cell\": not json";
    writeLines(journal.path(), lines);

    setQuiet(true);
    try {
        SweepRunner(2).journal(journal.path()).resume().run(spec);
        FAIL() << "mid-file journal corruption was accepted";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        EXPECT_NE(e.error().message.find("corrupt mid-file"),
                  std::string::npos);
    }
    setQuiet(false);
}

TEST(SweepResume, CorruptTailRecordIsTruncatedWithWarning)
{
    // Flip one payload byte in the *final* record: the CRC frame makes
    // the damage detectable, and because nothing follows it, resume
    // truncates to the last good record and re-runs just that cell.
    SweepSpec spec = smallSpec();
    std::string cleanCsv = csvOf(SweepRunner(2).run(spec));

    TempFile journal;
    SweepRunner(2).journal(journal.path()).run(spec);
    auto lines = readLines(journal.path());
    ASSERT_GT(lines.size(), 2u);
    std::string &last = lines.back();
    ASSERT_NE(last.find("\"crc\""), std::string::npos);
    last[last.size() / 2] ^= 0x01;
    writeLines(journal.path(), lines);

    SweepResults resumed =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_EQ(csvOf(resumed), cleanCsv);

    std::size_t fromJournal = 0;
    for (std::size_t i = 0; i < resumed.size(); ++i)
        if (resumed.outcomeAt(i).fromJournal)
            ++fromJournal;
    EXPECT_EQ(fromJournal, spec.numCells() - 1);
}

TEST(SweepResume, FingerprintMismatchIsRejected)
{
    TempFile journal;
    SweepSpec spec = smallSpec();
    SweepRunner(1).journal(journal.path()).run(spec);

    SweepSpec other = smallSpec();
    other.instructions(30'000);
    setQuiet(true);
    try {
        SweepRunner(1).journal(journal.path()).resume().run(other);
        FAIL() << "resume against a different spec was accepted";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
        EXPECT_NE(e.error().message.find("fingerprint"),
                  std::string::npos);
    }
    setQuiet(false);
}

TEST(SweepResume, MissingJournalMeansFreshRun)
{
    SweepSpec spec = smallSpec();
    std::string cleanCsv = csvOf(SweepRunner(2).run(spec));

    TempFile journal;
    std::remove(journal.path().c_str());
    SweepResults res =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    ASSERT_TRUE(res.allOk());
    EXPECT_EQ(csvOf(res), cleanCsv);
    for (std::size_t i = 0; i < res.size(); ++i)
        EXPECT_FALSE(res.outcomeAt(i).fromJournal);
}

TEST(SweepResume, FailedCellsAreNotJournaledAndRetryOnResume)
{
    SweepSpec spec = smallSpec();
    TempFile journal;

    setQuiet(true);
    FaultSpec faults;
    faults.corrupt = 1.0;
    SweepResults faulty = SweepRunner(2)
                              .injectFaults(faults)
                              .journal(journal.path())
                              .run(spec);
    setQuiet(false);
    EXPECT_EQ(faulty.failedCount(), spec.numCells());

    // Only the header line: no failed cell was checkpointed.
    EXPECT_EQ(readLines(journal.path()).size(), 1u);

    // Resuming without injection re-runs everything and succeeds.
    SweepResults retried =
        SweepRunner(2).journal(journal.path()).resume().run(spec);
    EXPECT_TRUE(retried.allOk());
    EXPECT_EQ(csvOf(retried), csvOf(SweepRunner(2).run(spec)));
}

} // anonymous namespace
} // namespace vmsim
