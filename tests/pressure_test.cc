/**
 * @file
 * Tests for the memory-pressure subsystem: FramePool victim order
 * under FIFO/LRU/CLOCK, dirty-bit writeback accounting, PhysMem frame
 * recycling and wired-page capacity shrinkage, the zero-usable-frames
 * and frameAddrOf-allocation bugfix regressions, strict CLI numeric
 * parsing, and end-to-end budgeted runs: invariant audits for all nine
 * organizations, scalar/batched/cached/multicore equivalence under a
 * tight budget, and the no-budget identity guarantees.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/parse.hh"
#include "base/units.hh"
#include "check/diff.hh"
#include "check/invariants.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "mem/frame_pool.hh"
#include "mem/phys_mem.hh"

namespace vmsim
{
namespace
{

// -------------------------------------------------------------- FramePool

TEST(FramePool, FifoEvictsInArrivalOrder)
{
    FramePool pool(4, ReclaimPolicy::Fifo);
    for (Vpn v = 1; v <= 4; ++v)
        pool.insert(v);
    // Touches are irrelevant to FIFO: 1 still goes first.
    pool.touch(1);
    pool.touch(2);
    EXPECT_EQ(pool.evict(99).vpn, 1u);
    EXPECT_EQ(pool.evict(99).vpn, 2u);
    EXPECT_EQ(pool.evict(99).vpn, 3u);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(FramePool, LruEvictsLeastRecentlyTouched)
{
    FramePool pool(3, ReclaimPolicy::Lru);
    pool.insert(1);
    pool.insert(2);
    pool.insert(3);
    pool.touch(1); // order is now 2, 3, 1
    EXPECT_EQ(pool.evict(99).vpn, 2u);
    pool.touch(3); // order is now 1, 3
    EXPECT_EQ(pool.evict(99).vpn, 1u);
    EXPECT_EQ(pool.evict(99).vpn, 3u);
}

TEST(FramePool, ClockGivesTouchedPagesASecondChance)
{
    FramePool pool(3, ReclaimPolicy::Clock);
    pool.insert(1);
    pool.insert(2);
    pool.insert(3);
    // All three start referenced; the first sweep clears every bit and
    // the second finds 1 (oldest) unreferenced.
    EXPECT_EQ(pool.evict(99).vpn, 1u);
    // 3's reference bit is set again, so 2 goes before it.
    pool.touch(3);
    EXPECT_EQ(pool.evict(99).vpn, 2u);
    EXPECT_EQ(pool.evict(99).vpn, 3u);
}

TEST(FramePool, EvictNeverReturnsTheProtectedPage)
{
    for (ReclaimPolicy p : {ReclaimPolicy::Fifo, ReclaimPolicy::Lru,
                            ReclaimPolicy::Clock}) {
        FramePool pool(2, p);
        pool.insert(10);
        pool.insert(11);
        // 10 is the natural victim under every policy; excluding it
        // must pick 11 instead.
        EXPECT_EQ(pool.evict(10).vpn, 11u) << reclaimPolicyName(p);
    }
}

TEST(FramePool, DirtyBitTravelsWithTheVictim)
{
    FramePool pool(3, ReclaimPolicy::Fifo);
    pool.insert(1);
    pool.insert(2);
    pool.markDirty(1);
    pool.markDirty(42); // not resident: must be a no-op
    FramePool::Victim v1 = pool.evict(99);
    EXPECT_EQ(v1.vpn, 1u);
    EXPECT_TRUE(v1.dirty);
    FramePool::Victim v2 = pool.evict(99);
    EXPECT_EQ(v2.vpn, 2u);
    EXPECT_FALSE(v2.dirty);
    // Re-admission starts clean even though the slot is recycled.
    pool.insert(1);
    EXPECT_FALSE(pool.evict(99).dirty);
}

TEST(FramePool, TinyBudgetsAreRejected)
{
    setQuiet(true);
    EXPECT_THROW(FramePool(0, ReclaimPolicy::Fifo), FatalError);
    EXPECT_THROW(FramePool(1, ReclaimPolicy::Lru), FatalError);
    FramePool pool(2, ReclaimPolicy::Fifo);
    // Wired pages may never consume the whole budget.
    EXPECT_THROW(pool.shrinkCapacity(), FatalError);
    setQuiet(false);
}

TEST(FramePool, PolicyNamesRoundTrip)
{
    for (ReclaimPolicy p : {ReclaimPolicy::Fifo, ReclaimPolicy::Lru,
                            ReclaimPolicy::Clock})
        EXPECT_EQ(parseReclaimPolicy(reclaimPolicyName(p)).value(), p);
    EXPECT_FALSE(parseReclaimPolicy("mru").ok());
    EXPECT_FALSE(parseReclaimPolicy("").ok());
}

// ---------------------------------------------------- PhysMem under budget

TEST(PhysMemBudget, EvictedFramesAreRecycled)
{
    PhysMem pm(8_MiB, 12);
    pm.setBudget(4, ReclaimPolicy::Fifo);
    pm.admitPage(1);
    Pfn f1 = pm.frameOf(1);
    pm.admitPage(2);
    pm.frameOf(2);
    FramePool::Victim v = pm.evictPage(2);
    EXPECT_EQ(v.vpn, 1u);
    EXPECT_FALSE(pm.isMapped(1));
    // The next admitted page reuses the evicted page's frame.
    pm.admitPage(3);
    EXPECT_EQ(pm.frameOf(3), f1);
    EXPECT_EQ(pm.wiredFrames(), 0u);
}

TEST(PhysMemBudget, NonResidentAllocationIsWiredAndShrinksCapacity)
{
    PhysMem pm(8_MiB, 12);
    pm.setBudget(4, ReclaimPolicy::Lru);
    ASSERT_EQ(pm.framePool()->capacity(), 4u);
    pm.frameOf(1000); // a page-table page, never admitted to the pool
    EXPECT_EQ(pm.wiredFrames(), 1u);
    EXPECT_EQ(pm.framePool()->capacity(), 3u);
}

TEST(PhysMemBudget, SetBudgetIsOneShotAndPreAllocation)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    pm.setBudget(8, ReclaimPolicy::Fifo);
    EXPECT_THROW(pm.setBudget(8, ReclaimPolicy::Fifo), PanicError);
    PhysMem late(8_MiB, 12);
    late.frameOf(1);
    EXPECT_THROW(late.setBudget(8, ReclaimPolicy::Fifo), PanicError);
    setQuiet(false);
}

// ------------------------------------------------------ bugfix regressions

TEST(PhysMemRegression, FrameAddrOfIsAReadOnlyQuery)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    // The old frameAddrOf allocated on query; now it must refuse.
    EXPECT_THROW(pm.frameAddrOf(42), PanicError);
    EXPECT_EQ(pm.framesUsed(), 0u);
    Addr a = pm.frameAddrAlloc(42);
    EXPECT_EQ(pm.frameAddrOf(42), a);
    EXPECT_EQ(pm.framesUsed(), 1u);
    setQuiet(false);
}

TEST(PhysMemRegression, ReservationConsumingAllFramesIsFatal)
{
    setQuiet(true);
    PhysMem pm(16_KiB, 12); // 4 frames
    // The old code left numFrames_ == 0 and then handed out frames
    // past sizeBytes_; now the reservation itself must be fatal.
    EXPECT_THROW(pm.reserveRegion(16_KiB, 4096), FatalError);
    PhysMem pm2(16_KiB, 12);
    EXPECT_THROW(pm2.reserveRegion(13_KiB, 4096), FatalError);
    // Leaving at least one usable frame is still fine.
    PhysMem pm3(16_KiB, 12);
    pm3.reserveRegion(12_KiB, 4096);
    EXPECT_EQ(pm3.numFrames(), 1u);
    setQuiet(false);
}

TEST(PhysMemRegression, UnbudgetedOvercommitStillWarnsAndContinues)
{
    setQuiet(true);
    PhysMem pm(1_MiB, 12); // 256 frames
    for (Vpn v = 0; v < 300; ++v)
        pm.frameOf(v);
    EXPECT_TRUE(pm.overcommitted());
    EXPECT_EQ(pm.framesUsed(), 300u);
    EXPECT_EQ(pm.frameOf(299), pm.frameOf(299));
    setQuiet(false);
}

TEST(SimConfigRegression, BudgetOfOneFrameIsRejected)
{
    SimConfig cfg;
    cfg.physFrames = 1;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.physFrames = 2;
    EXPECT_TRUE(cfg.validate().ok());
    cfg.faultReadCycles = 0;
    EXPECT_FALSE(cfg.validate().ok());
}

// ------------------------------------------------------ strict CLI parsing

TEST(StrictParse, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseU64("0", "--x").value(), 0u);
    EXPECT_EQ(parseU64("2000000", "--x").value(), 2000000u);
    EXPECT_EQ(parseU32("4096", "--x").value(), 4096u);
    EXPECT_DOUBLE_EQ(parseF64("2.5", "--x").value(), 2.5);
}

TEST(StrictParse, RejectsGarbageThatStrtoullAccepted)
{
    // Each of these used to silently become 0, 2, or a wrapped huge
    // value under the old strtoull(arg, nullptr, 10) parsing.
    for (const char *s : {"", "abc", "2e6", "1.5", "12x", " 7", "-1",
                          "+3", "0x10", "99999999999999999999999"}) {
        Expected<std::uint64_t> v = parseU64(s, "--flag");
        EXPECT_FALSE(v.ok()) << "'" << s << "'";
        if (!v.ok())
            EXPECT_EQ(v.error().code, ErrorCode::InvalidArgument);
    }
    EXPECT_FALSE(parseU32("4294967296", "--x").ok()); // 2^32
    EXPECT_TRUE(parseU32("4294967295", "--x").ok());
    for (const char *s : {"", "fast", "1.5x", "nan", "inf"})
        EXPECT_FALSE(parseF64(s, "--x").ok()) << "'" << s << "'";
}

TEST(StrictParse, BenchOptionsRejectMalformedNumericFlags)
{
    setQuiet(true);
    auto parse = [](std::vector<std::string> words) {
        std::vector<char *> argv;
        static std::string prog = "bench";
        argv.push_back(prog.data());
        for (std::string &w : words)
            argv.push_back(w.data());
        return BenchOptions::parse(static_cast<int>(argv.size()),
                                   argv.data());
    };
    EXPECT_THROW(parse({"--instructions=2e6"}), VmsimError);
    EXPECT_THROW(parse({"--batch=abc"}), VmsimError);
    EXPECT_THROW(parse({"--seeds=-1"}), VmsimError);
    EXPECT_THROW(parse({"--phys-mb=0"}), FatalError);
    EXPECT_THROW(parse({"--phys-mb=four"}), VmsimError);
    EXPECT_THROW(parse({"--phys-mb-list=4,x"}), VmsimError);
    EXPECT_THROW(parse({"--reclaim=mru"}), VmsimError);
    BenchOptions ok =
        parse({"--instructions=5000", "--phys-mb=8", "--reclaim=clock",
               "--phys-mb-list=4,8,16"});
    EXPECT_EQ(ok.instructions, 5000u);
    EXPECT_EQ(ok.physMb, 8u);
    EXPECT_EQ(ok.reclaim, ReclaimPolicy::Clock);
    EXPECT_EQ(ok.physMbList, (std::vector<std::uint64_t>{4, 8, 16}));
    EXPECT_EQ(ok.physFramesFor(12), (8u << 20) >> 12);
    setQuiet(false);
}

// ------------------------------------------------------------- end to end

SimConfig
pressureCfg(SystemKind kind)
{
    SimConfig c;
    c.kind = kind;
    c.l1 = CacheParams{16_KiB, 32};
    c.l2 = CacheParams{1_MiB, 64};
    return c;
}

constexpr SystemKind kAllKinds[] = {
    SystemKind::Ultrix, SystemKind::Mach,       SystemKind::Intel,
    SystemKind::Parisc, SystemKind::Notlb,      SystemKind::Base,
    SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur,
};

TEST(PressureRun, UnbudgetedRunsCarryNoPressureState)
{
    SimConfig c = pressureCfg(SystemKind::Ultrix);
    Results r = runOnce(c, "gcc", 20000, 5000);
    EXPECT_EQ(r.vmStats().pagesTouched, 0u);
    EXPECT_EQ(r.vmStats().majorFaults, 0u);
    EXPECT_EQ(r.vmStats().evictions, 0u);
    EXPECT_DOUBLE_EQ(r.faultCpi(), 0.0);
    // The no-budget JSON must not even mention the pressure keys —
    // that is what keeps the golden artifacts byte-identical.
    const std::string json = r.toJson().dump();
    EXPECT_EQ(json.find("major_faults"), std::string::npos);
    EXPECT_EQ(json.find("fault_cpi"), std::string::npos);
    const std::string summary = [&] {
        std::ostringstream os;
        r.printSummary(os);
        return os.str();
    }();
    EXPECT_EQ(summary.find("pfCPI"), std::string::npos);
}

TEST(PressureRun, AllNineOrganizationsPassTheAuditUnderBudget)
{
    const ReclaimPolicy policies[] = {
        ReclaimPolicy::Fifo, ReclaimPolicy::Lru, ReclaimPolicy::Clock};
    unsigned i = 0;
    for (SystemKind kind : kAllKinds) {
        SimConfig c = pressureCfg(kind);
        c.physFrames = 96;
        c.reclaimPolicy = policies[i++ % 3];
        Results r = runOnce(c, "gcc", 20000, 5000);
        CheckReport rep = InvariantChecker(c).check(r);
        EXPECT_TRUE(rep.ok()) << kindName(kind) << ": "
                              << rep.toString();
        const VmStats &vm = r.vmStats();
        EXPECT_EQ(vm.majorFaults + vm.reusedFrames, vm.pagesTouched)
            << kindName(kind);
        if (kind == SystemKind::Base) {
            // BASE models a machine with no VM at all; it stays
            // pressure-free so bench_total_overhead's MCPI_vm −
            // MCPI_base subtraction isolates VM cost, not paging.
            EXPECT_EQ(vm.pagesTouched, 0u);
            EXPECT_DOUBLE_EQ(r.faultCpi(), 0.0);
            continue;
        }
        EXPECT_GT(vm.pagesTouched, 0u) << kindName(kind);
        EXPECT_GT(vm.majorFaults, 0u) << kindName(kind);
        EXPECT_GT(r.faultCpi(), 0.0) << kindName(kind);
    }
}

TEST(PressureRun, TightBudgetForcesEvictionsAndWritebacks)
{
    SimConfig c = pressureCfg(SystemKind::Ultrix);
    c.physFrames = 96;
    Results r = runOnce(c, "gcc", 25000, 5000);
    const VmStats &vm = r.vmStats();
    EXPECT_GT(vm.evictions, 0u);
    EXPECT_GT(vm.writebacks, 0u);
    EXPECT_LE(vm.writebacks, vm.evictions);
    // Evicted pages fault back in: more major faults than distinct
    // pages would explain.
    EXPECT_GT(vm.majorFaults, 96u);
}

TEST(PressureRun, CountersSurviveTheJournalRoundTrip)
{
    SimConfig c = pressureCfg(SystemKind::Mach);
    c.physFrames = 96;
    c.cores = 2;
    c.ctxSwitchInterval = 997;
    Results r = runOnce(c, "gcc", 20000, 5000);
    ASSERT_GT(r.vmStats().majorFaults, 0u);
    Results back =
        Results::deserialize(r.serialize(), r.costs()).orThrow();
    EXPECT_EQ(r.serialize().dump(), back.serialize().dump());
    EXPECT_DOUBLE_EQ(r.totalCpi(), back.totalCpi());
}

TEST(PressureEquivalence, AllLegsAgreeUnderEveryPolicy)
{
    DiffRunner runner;
    unsigned index = 0;
    for (ReclaimPolicy p : {ReclaimPolicy::Fifo, ReclaimPolicy::Lru,
                            ReclaimPolicy::Clock}) {
        FuzzTuple t = runner.generate(index++);
        t.faults = false;
        t.physFrames = 96;
        t.reclaim = p;
        CheckReport rep = runner.runCase(t);
        EXPECT_TRUE(rep.ok())
            << t.toString() << ": " << rep.toString();
    }
}

TEST(PressureEquivalence, MulticoreLegsAgreeUnderBudget)
{
    DiffRunner runner;
    FuzzTuple t = runner.generate(7);
    t.faults = false;
    t.physFrames = 96;
    t.reclaim = ReclaimPolicy::Lru;
    t.cores = 2;
    CheckReport rep = runner.runCase(t);
    EXPECT_TRUE(rep.ok()) << t.toString() << ": " << rep.toString();
}

} // anonymous namespace
} // namespace vmsim
