/**
 * @file
 * Tests for the Mach three-tiered page table (paper Fig. 2): per-pid
 * UPT placement, the 4 MB kernel table mapping the full 4 GB space,
 * the 4 KB root table, and the three-deep nesting structure.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/phys_mem.hh"
#include "pt/mach_page_table.hh"

namespace vmsim
{
namespace
{

TEST(MachPageTable, PaperLayoutSizes)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm);
    EXPECT_EQ(pt.uptBytes(), 2_MiB);
    EXPECT_EQ(pt.kptBytes(), 4_MiB); // maps the whole 4 GB space
    EXPECT_EQ(pt.rptBytes(), 4_KiB);
}

TEST(MachPageTable, UptBaseDependsOnPid)
{
    PhysMem pm1(8_MiB, 12), pm2(8_MiB, 12);
    MachPageTable a(pm1, 12, 1), b(pm2, 12, 2);
    EXPECT_EQ(a.uptBase(), kMachUptRegion + 2_MiB);
    EXPECT_EQ(b.uptBase(), kMachUptRegion + 4_MiB);
    EXPECT_EQ(b.uptBase() - a.uptBase(), a.uptBytes());
}

TEST(MachPageTable, PidBeyondRegionRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    // The UPT region runs from 0xA0000000 to the KPT at 0xFFC00000:
    // about 1534 MB -> 767 pids of 2 MB each fit.
    EXPECT_THROW(MachPageTable(pm, 12, 100000), FatalError);
    setQuiet(false);
}

TEST(MachPageTable, UptEntryAddresses)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm, 12, 3);
    EXPECT_EQ(pt.uptEntryAddr(0), pt.uptBase());
    EXPECT_EQ(pt.uptEntryAddr(7), pt.uptBase() + 28);
    EXPECT_GE(pt.uptEntryAddr(0), kKernelBase);
}

TEST(MachPageTable, KptMapsTheWholeSpace)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm);
    // KPTE for kernel VPN 0 sits at the KPT base...
    EXPECT_EQ(pt.kptEntryAddr(0), kMachKptBase);
    // ...and the KPTE for the last VPN of the 4 GB space sits at the
    // very top of the 4 MB table.
    Vpn last = (std::uint64_t{4} * kGiB >> 12) - 1;
    EXPECT_EQ(pt.kptEntryAddr(last), 0xFFFFFFFCu);
}

TEST(MachPageTable, ThreeLevelNestingStructure)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm, 12, 1);
    Vpn user_vpn = 99999;

    // Level 1: the UPTE, a mapped kernel-virtual address.
    Addr upte = pt.uptEntryAddr(user_vpn);
    Vpn upte_page = pt.uptPageVpn(user_vpn);
    EXPECT_EQ(upte >> 12, upte_page);

    // Level 2: the KPTE mapping that UPT page — inside the KPT.
    Addr kpte = pt.kptEntryAddr(upte_page);
    EXPECT_GE(kpte, kMachKptBase);
    Vpn kpte_page = pt.kptPageVpn(upte_page);
    EXPECT_EQ(kpte >> 12, kpte_page);

    // Level 3: the RPTE mapping that KPT page — physical window.
    Addr rpte = pt.rptEntryAddr(kpte_page);
    EXPECT_GE(rpte, kPhysWindowBase);
    EXPECT_LT(rpte, kPhysWindowBase + pm.sizeBytes());
}

TEST(MachPageTable, RptIndexOutsideKptRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm);
    // A VPN below the KPT region is not a KPT page.
    EXPECT_THROW(pt.rptEntryAddr(0x1000), PanicError);
    setQuiet(false);
}

TEST(MachPageTable, AdminDataAddressesAreSpread)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm);
    // The 10 admin loads touch distinct 64-byte lines.
    std::set<Addr> lines;
    for (unsigned i = 0; i < 10; ++i)
        lines.insert(pt.adminDataAddr(i) / 64);
    EXPECT_EQ(lines.size(), 10u);
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_GE(pt.adminDataAddr(i), kPhysWindowBase);
        EXPECT_LT(pt.adminDataAddr(i), kPhysWindowBase + pm.sizeBytes());
    }
}

TEST(MachPageTable, SharedUptPageForNeighbors)
{
    PhysMem pm(8_MiB, 12);
    MachPageTable pt(pm);
    EXPECT_EQ(pt.uptPageVpn(0), pt.uptPageVpn(1023));
    EXPECT_NE(pt.uptPageVpn(0), pt.uptPageVpn(1024));
}

TEST(MachPageTable, ReservesRootAndAdminRegions)
{
    PhysMem pm(8_MiB, 12);
    std::uint64_t before = pm.numFrames();
    MachPageTable pt(pm);
    EXPECT_LT(pm.numFrames(), before);
}

} // anonymous namespace
} // namespace vmsim
