/**
 * @file
 * Tests for the NOTLB disjunct page table (paper Fig. 5): scattered
 * page groups, bijective group placement, entry math identical in
 * cost structure to the Ultrix table.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/phys_mem.hh"
#include "pt/disjunct_page_table.hh"

namespace vmsim
{
namespace
{

TEST(DisjunctPageTable, GroupCountAndRootSize)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    // 512K user pages / 1024 PTEs per group = 512 page groups.
    EXPECT_EQ(pt.numGroups(), 512u);
    EXPECT_EQ(pt.rptBytes(), 2_KiB);
}

TEST(DisjunctPageTable, GroupBasesArePageAlignedAndDistinct)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    std::set<Addr> bases;
    for (std::uint64_t g = 0; g < pt.numGroups(); ++g) {
        Addr base = pt.groupBase(g);
        EXPECT_EQ(base % 4096, 0u);
        bases.insert(base);
    }
    // Bijective scatter: no two groups collide.
    EXPECT_EQ(bases.size(), pt.numGroups());
}

TEST(DisjunctPageTable, GroupsAreScatteredNotSequential)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    // Consecutive groups must not be laid out back to back (that
    // would be the contiguous ULTRIX layout).
    unsigned adjacent = 0;
    for (std::uint64_t g = 0; g + 1 < pt.numGroups(); ++g)
        if (pt.groupBase(g + 1) == pt.groupBase(g) + 4096)
            ++adjacent;
    EXPECT_LT(adjacent, pt.numGroups() / 16);
}

TEST(DisjunctPageTable, EntryMathWithinGroup)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    // VPNs 0..1023 live in group 0, linearly.
    EXPECT_EQ(pt.groupOf(0), 0u);
    EXPECT_EQ(pt.groupOf(1023), 0u);
    EXPECT_EQ(pt.groupOf(1024), 1u);
    EXPECT_EQ(pt.uptEntryAddr(1) - pt.uptEntryAddr(0), 4u);
    EXPECT_EQ(pt.uptEntryAddr(0), pt.groupBase(0));
}

TEST(DisjunctPageTable, EntriesInKernelSpace)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    for (Vpn v = 0; v < 524288; v += 50000)
        EXPECT_GE(pt.uptEntryAddr(v), kKernelBase);
}

TEST(DisjunctPageTable, RptEntriesPhysical)
{
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    EXPECT_GE(pt.rptEntryAddr(0), kPhysWindowBase);
    // One RPTE per group.
    EXPECT_EQ(pt.rptEntryAddr(0), pt.rptEntryAddr(1023));
    EXPECT_EQ(pt.rptEntryAddr(1024) - pt.rptEntryAddr(0), 4u);
}

TEST(DisjunctPageTable, OutOfRangeGroupPanics)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    EXPECT_THROW(pt.groupBase(pt.numGroups()), PanicError);
    setQuiet(false);
}

TEST(DisjunctPageTable, TooSmallSpanRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    // A 2^21 = 2 MB span holds only 512 pages — exactly numGroups;
    // 2^20 cannot.
    EXPECT_THROW(DisjunctPageTable(pm, 12, kUptBaseUltrix, 20),
                 FatalError);
    EXPECT_NO_THROW(DisjunctPageTable(pm, 12, kUptBaseUltrix, 21));
    setQuiet(false);
}

TEST(DisjunctPageTable, SameCostStructureAsUltrix)
{
    // The paper relies on ULTRIX and NOTLB having identical walk
    // costs: one UPTE plus (on nesting) one RPTE, both 4 bytes.
    PhysMem pm(8_MiB, 12);
    DisjunctPageTable pt(pm);
    Vpn v = 123456;
    Addr upte = pt.uptEntryAddr(v);
    Addr rpte = pt.rptEntryAddr(v);
    EXPECT_NE(upte, rpte);
    EXPECT_GE(rpte, kPhysWindowBase); // root is unmapped: no recursion
}

} // anonymous namespace
} // namespace vmsim
