/**
 * @file
 * Differential fuzz campaign as a test: a seeded batch of random
 * (organization, workload, config, batch, fault) tuples must agree
 * across every execution strategy and satisfy every invariant, and the
 * campaign must be bit-deterministic so CI can diff its report.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/diff.hh"

namespace vmsim
{
namespace
{

TEST(DiffRunner, GenerateIsDeterministic)
{
    DiffOptions opts;
    opts.seed = 4242;
    DiffRunner a(opts), b(opts);
    for (std::uint64_t i = 0; i < 32; ++i)
        EXPECT_EQ(a.generate(i).toString(), b.generate(i).toString());
}

TEST(DiffRunner, GenerateCoversOrganizationsAndFeatures)
{
    DiffOptions opts;
    opts.seed = 4242;
    DiffRunner runner(opts);
    bool sawFaults = false, sawCtx = false, sawAsid = false,
         sawL2Tlb = false, sawWarmup = false;
    std::set<SystemKind> kinds;
    std::set<unsigned> cores;
    for (std::uint64_t i = 0; i < 200; ++i) {
        FuzzTuple t = runner.generate(i);
        kinds.insert(t.kind);
        cores.insert(t.cores);
        sawFaults |= t.faults;
        sawCtx |= t.ctxSwitch != 0;
        sawAsid |= t.asidBits != 0;
        sawL2Tlb |= t.l2TlbEntries != 0;
        sawWarmup |= t.warmup != 0;
        EXPECT_GT(t.instrs, 0u);
        EXPECT_LE(t.instrs, opts.maxInstrs);
        EXPECT_GT(t.coreQuantum, 0u);
    }
    EXPECT_EQ(kinds.size(), 9u);
    EXPECT_EQ(cores, (std::set<unsigned>{1, 2, 4}));
    EXPECT_TRUE(sawFaults);
    EXPECT_TRUE(sawCtx);
    EXPECT_TRUE(sawAsid);
    EXPECT_TRUE(sawL2Tlb);
    EXPECT_TRUE(sawWarmup);
}

TEST(DiffRunner, ForceCoresPinsEveryTuple)
{
    DiffOptions opts;
    opts.seed = 4242;
    opts.forceCores = 4;
    DiffRunner runner(opts);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(runner.generate(i).cores, 4u);
}

TEST(DiffRunner, SeededCampaignFindsNoDivergence)
{
    DiffOptions opts;
    opts.seed = 20260806;
    FuzzReport report = DiffRunner(opts).run(60);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.cases, 60u);
    EXPECT_GT(report.lawsChecked, 0u);
}

TEST(DiffRunner, ReportIsByteStableAcrossReruns)
{
    DiffOptions opts;
    opts.seed = 99;
    std::string a = DiffRunner(opts).run(25).toJson().dump(2);
    std::string b = DiffRunner(opts).run(25).toJson().dump(2);
    EXPECT_EQ(a, b);
}

TEST(FuzzTuple, ConfigRoundTripsThroughJson)
{
    DiffOptions opts;
    FuzzTuple t = DiffRunner(opts).generate(7);
    Json j = t.toJson();
    EXPECT_EQ(j.find("system")->asString(), kindName(t.kind));
    EXPECT_EQ(j.find("instrs")->asUint(), t.instrs);
    EXPECT_EQ(j.find("batch")->asUint(), t.batch);
    // The derived SimConfig must validate for every generated tuple.
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_TRUE(DiffRunner(opts).generate(i).toConfig().validate()
                        .ok());
}

} // anonymous namespace
} // namespace vmsim
