/**
 * @file
 * Tests for the Ultrix two-tiered bottom-up page table (paper Fig. 1):
 * layout sizes (2 MB UPT / 2 KB RPT at the paper's geometry), entry
 * address math, and the virtual/physical split of the two levels.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/phys_mem.hh"
#include "pt/ultrix_page_table.hh"

namespace vmsim
{
namespace
{

TEST(UltrixPageTable, PaperLayoutSizes)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    // 2 GB user space / 4 KB pages * 4 B PTEs = 2 MB user table.
    EXPECT_EQ(pt.uptBytes(), 2_MiB);
    // 2 MB UPT / 4 KB pages * 4 B PTEs = 2 KB root table.
    EXPECT_EQ(pt.rptBytes(), 2_KiB);
    EXPECT_EQ(pt.userPages(), 524288u);
    EXPECT_EQ(pt.ptesPerPage(), 1024u);
}

TEST(UltrixPageTable, UptEntryAddresses)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    EXPECT_EQ(pt.uptEntryAddr(0), kUptBaseUltrix);
    EXPECT_EQ(pt.uptEntryAddr(1), kUptBaseUltrix + 4);
    EXPECT_EQ(pt.uptEntryAddr(1024), kUptBaseUltrix + 4096);
    // The UPT is linear: adjacent VPNs have adjacent PTEs.
    for (Vpn v = 100; v < 110; ++v)
        EXPECT_EQ(pt.uptEntryAddr(v + 1) - pt.uptEntryAddr(v), 4u);
}

TEST(UltrixPageTable, UptEntriesLiveInKernelVirtualSpace)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    EXPECT_GE(pt.uptEntryAddr(0), kKernelBase);
    EXPECT_GE(pt.uptEntryAddr(pt.userPages() - 1), kKernelBase);
    // And below 4 GB.
    EXPECT_LT(pt.uptEntryAddr(pt.userPages() - 1), std::uint64_t{4} *
                                                       kGiB);
}

TEST(UltrixPageTable, UptPageVpn)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    // 1024 PTEs per page: VPNs 0..1023 share one UPT page.
    EXPECT_EQ(pt.uptPageVpn(0), pt.uptPageVpn(1023));
    EXPECT_NE(pt.uptPageVpn(1023), pt.uptPageVpn(1024));
    EXPECT_EQ(pt.uptPageVpn(0), kUptBaseUltrix >> 12);
}

TEST(UltrixPageTable, RptEntriesInPhysicalWindow)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    Addr r = pt.rptEntryAddr(0);
    EXPECT_GE(r, kPhysWindowBase);
    EXPECT_LT(r, kPhysWindowBase + pm.sizeBytes());
    // One RPTE covers 1024 user VPNs (one UPT page).
    EXPECT_EQ(pt.rptEntryAddr(0), pt.rptEntryAddr(1023));
    EXPECT_EQ(pt.rptEntryAddr(1024) - pt.rptEntryAddr(0), 4u);
}

TEST(UltrixPageTable, RootTableReservedFromPhysMem)
{
    PhysMem pm(8_MiB, 12);
    EXPECT_EQ(pm.numFrames(), 2048u);
    UltrixPageTable pt(pm);
    // 2 KB root table consumes one (page-aligned) frame.
    EXPECT_EQ(pm.numFrames(), 2047u);
}

TEST(UltrixPageTable, MisalignedUptBaseRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    EXPECT_THROW(UltrixPageTable(pm, 12, 0xC0000100), FatalError);
    // UPT must be in kernel space.
    EXPECT_THROW(UltrixPageTable(pm, 12, 0x10000000), FatalError);
    setQuiet(false);
}

TEST(UltrixPageTable, AtMostTwoMemoryReferences)
{
    // The paper: "It requires at most two memory references to find
    // the appropriate mapping information."  Structurally: one UPTE
    // and one RPTE address exist per VPN, nothing deeper.
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    Vpn v = 123456;
    Addr upte = pt.uptEntryAddr(v);
    Addr rpte = pt.rptEntryAddr(v);
    EXPECT_NE(upte, rpte);
    // The RPTE lives in unmapped space: walking it can never recurse.
    EXPECT_GE(rpte, kPhysWindowBase);
    EXPECT_LT(rpte, kUptBaseUltrix);
}

TEST(UltrixPageTable, DistinctVpnsDistinctUptes)
{
    PhysMem pm(8_MiB, 12);
    UltrixPageTable pt(pm);
    EXPECT_NE(pt.uptEntryAddr(1), pt.uptEntryAddr(2));
    EXPECT_NE(pt.uptEntryAddr(0), pt.uptEntryAddr(pt.userPages() - 1));
}

TEST(UltrixPageTable, AlternatePageSize)
{
    PhysMem pm(8_MiB, 13); // 8 KB pages
    UltrixPageTable pt(pm, 13);
    // 2 GB / 8 KB * 4 B = 1 MB UPT.
    EXPECT_EQ(pt.uptBytes(), 1_MiB);
    EXPECT_EQ(pt.ptesPerPage(), 2048u);
    // 1 MB / 8 KB * 4 = 512 B RPT.
    EXPECT_EQ(pt.rptBytes(), 512u);
}

} // anonymous namespace
} // namespace vmsim
