/**
 * @file
 * Tests for the factory layer (per-system defaults of Table 1/Table 4)
 * and the diagnostic workloads' extreme-behavior guarantees.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

// ---------------------------------------------------------------- factory

TEST(Factory, HandlerCostDefaultsMatchTable4)
{
    HandlerCosts ultrix = defaultHandlerCosts(SystemKind::Ultrix);
    EXPECT_EQ(ultrix.userInstrs, 10u);
    EXPECT_EQ(ultrix.rootInstrs, 20u);
    EXPECT_EQ(ultrix.adminLoads, 0u);

    HandlerCosts mach = defaultHandlerCosts(SystemKind::Mach);
    EXPECT_EQ(mach.userInstrs, 10u);
    EXPECT_EQ(mach.kernelInstrs, 20u);
    EXPECT_EQ(mach.rootInstrs, 500u);
    EXPECT_EQ(mach.adminLoads, 10u);

    HandlerCosts parisc = defaultHandlerCosts(SystemKind::Parisc);
    EXPECT_EQ(parisc.userInstrs, 20u);

    HandlerCosts intel = defaultHandlerCosts(SystemKind::Intel);
    EXPECT_EQ(intel.hwWalkCycles, 7u);

    HandlerCosts notlb = defaultHandlerCosts(SystemKind::Notlb);
    EXPECT_EQ(notlb.userInstrs, 10u);
    EXPECT_EQ(notlb.rootInstrs, 20u);
}

TEST(Factory, TlbPartitioningPerTable1)
{
    SimConfig cfg;
    cfg.tlbEntries = 128;
    cfg.tlbProtectedSlots = 16;
    // MIPS-likes get the partition...
    for (SystemKind kind : {SystemKind::Ultrix, SystemKind::Mach,
                            SystemKind::HwMips}) {
        EXPECT_EQ(tlbParamsFor(kind, cfg).protectedSlots, 16u)
            << kindName(kind);
    }
    // ...the others are unpartitioned.
    for (SystemKind kind : {SystemKind::Intel, SystemKind::Parisc,
                            SystemKind::HwInverted}) {
        EXPECT_EQ(tlbParamsFor(kind, cfg).protectedSlots, 0u)
            << kindName(kind);
    }
    EXPECT_EQ(tlbParamsFor(SystemKind::Ultrix, cfg).entries, 128u);
}

TEST(Factory, TlbExtensionsPropagate)
{
    SimConfig cfg;
    cfg.tlbAssoc = 4;
    cfg.tlbAsidBits = 6;
    TlbParams p = tlbParamsFor(SystemKind::Intel, cfg);
    EXPECT_EQ(p.assoc, 4u);
    EXPECT_EQ(p.asidBits, 6u);
}

TEST(Factory, HandlerCostOverride)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Ultrix;
    cfg.l1 = CacheParams{32_KiB, 32};
    cfg.l2 = CacheParams{1_MiB, 64};
    cfg.overrideHandlerCosts = true;
    cfg.handlerCosts.userInstrs = 33;
    System sys(cfg);
    sys.vm().dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(sys.vm().vmStats().uhandlerInstrs, 33u);
}

TEST(Factory, EverySystemKindConstructs)
{
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Mach, SystemKind::Intel,
          SystemKind::Parisc, SystemKind::Notlb, SystemKind::Base,
          SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur}) {
        SimConfig cfg;
        cfg.kind = kind;
        cfg.l1 = CacheParams{32_KiB, 32};
        cfg.l2 = CacheParams{1_MiB, 64};
        System sys(cfg);
        EXPECT_STREQ(sys.vm().name().c_str(), kindName(kind));
        EXPECT_EQ(kindHasTlb(kind), sys.vm().itlb() != nullptr);
    }
}

// ---------------------------------------------------- diagnostic workloads

TEST(Diagnostics, FactoryNames)
{
    EXPECT_EQ(makeWorkload("stream")->name(), "stream-diagnostic");
    EXPECT_EQ(makeWorkload("chase")->name(), "chase-diagnostic");
    EXPECT_EQ(makeWorkload("uniform")->name(), "uniform-diagnostic");
}

/** Distinct data pages and lines touched over a reference window. */
struct Footprint
{
    std::size_t pages = 0;
    std::size_t lines = 0;
    Counter refs = 0;
};

Footprint
dataFootprint(const char *name, int n)
{
    auto w = makeWorkload(name, 11);
    TraceRecord r;
    std::set<std::uint32_t> pages, lines;
    Footprint f;
    for (int i = 0; i < n; ++i) {
        w->next(r);
        if (r.isMemOp()) {
            ++f.refs;
            pages.insert(r.daddr >> 12);
            lines.insert(r.daddr >> 6);
        }
    }
    f.pages = pages.size();
    f.lines = lines.size();
    return f;
}

TEST(Diagnostics, StreamHasPerfectSpatialLocality)
{
    Footprint f = dataFootprint("stream", 50000);
    // Sequential 4-byte strides: ~16 refs per 64B line.
    EXPECT_NEAR(static_cast<double>(f.refs) / f.lines, 16.0, 1.0);
}

TEST(Diagnostics, ChaseHasNoSpatialLocality)
{
    Footprint f = dataFootprint("chase", 50000);
    // Each reference lands on its own line (permutation cycle).
    EXPECT_GT(static_cast<double>(f.lines), 0.95 * f.refs);
    // And the page working set dwarfs a 128-entry TLB.
    EXPECT_GT(f.pages, 500u);
}

TEST(Diagnostics, ExtremesBoundTlbBehavior)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Intel;
    cfg.l1 = CacheParams{64_KiB, 64};
    cfg.l2 = CacheParams{1_MiB, 128};
    Results stream = runOnce(cfg, "stream", 100000, 50000);
    Results chase = runOnce(cfg, "chase", 100000, 50000);
    Results uniform = runOnce(cfg, "uniform", 100000, 50000);
    // Chase is the TLB worst case, stream the best; uniform between.
    Counter s = stream.vmStats().hwWalks;
    Counter u = uniform.vmStats().hwWalks;
    Counter c = chase.vmStats().hwWalks;
    EXPECT_LT(s, u);
    EXPECT_LE(u, c);
    // Chase misses on nearly every data reference (~50% of instrs).
    EXPECT_GT(c, 100000u * 4 / 10);
}

TEST(Diagnostics, Deterministic)
{
    auto a = makeWorkload("uniform", 3);
    auto b = makeWorkload("uniform", 3);
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        a->next(ra);
        b->next(rb);
        ASSERT_EQ(ra, rb);
    }
}

} // anonymous namespace
} // namespace vmsim
