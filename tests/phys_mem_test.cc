/**
 * @file
 * Tests for PhysMem: region reservation, first-touch frame allocation,
 * determinism, and overcommit behavior.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/phys_mem.hh"

namespace vmsim
{
namespace
{

TEST(PhysMem, BasicGeometry)
{
    PhysMem pm(8_MiB, 12);
    EXPECT_EQ(pm.pageSize(), 4096u);
    EXPECT_EQ(pm.numFrames(), 2048u);
    EXPECT_EQ(pm.framesUsed(), 0u);
    EXPECT_FALSE(pm.overcommitted());
}

TEST(PhysMem, InvalidConstruction)
{
    setQuiet(true);
    EXPECT_THROW(PhysMem(0, 12), FatalError);
    EXPECT_THROW(PhysMem(3_MiB, 12), FatalError); // not a power of two
    EXPECT_THROW(PhysMem(8_MiB, 40), FatalError); // silly page size
    EXPECT_THROW(PhysMem(1_KiB, 12), FatalError); // smaller than a page
    setQuiet(false);
}

TEST(PhysMem, FirstTouchIsDeterministic)
{
    PhysMem pm(8_MiB, 12);
    Pfn f1 = pm.frameOf(100);
    Pfn f2 = pm.frameOf(200);
    EXPECT_NE(f1, f2);
    EXPECT_EQ(pm.frameOf(100), f1);
    EXPECT_EQ(pm.frameOf(200), f2);
    EXPECT_EQ(pm.framesUsed(), 2u);
}

TEST(PhysMem, IsMapped)
{
    PhysMem pm(8_MiB, 12);
    EXPECT_FALSE(pm.isMapped(5));
    pm.frameOf(5);
    EXPECT_TRUE(pm.isMapped(5));
    EXPECT_FALSE(pm.isMapped(6));
}

TEST(PhysMem, FrameAddr)
{
    PhysMem pm(8_MiB, 12);
    Pfn f = pm.frameOf(7);
    EXPECT_EQ(pm.frameAddrOf(7), f << 12);
}

TEST(PhysMem, ReserveRegionsAreDisjointAndAligned)
{
    PhysMem pm(8_MiB, 12);
    Addr a = pm.reserveRegion(2_KiB, 4096);
    Addr b = pm.reserveRegion(64_KiB, 4096);
    Addr c = pm.reserveRegion(100, 64);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(b, a + 2_KiB);
    EXPECT_GE(c, b + 64_KiB);
}

TEST(PhysMem, FramesStartAfterReservations)
{
    PhysMem pm(8_MiB, 12);
    pm.reserveRegion(64_KiB, 4096);
    Pfn first = pm.frameOf(0);
    // Frame 0..15 hold the reserved region.
    EXPECT_GE(first, 16u);
    // The reservation shrank the pool.
    EXPECT_EQ(pm.numFrames(), 2048u - 16u);
}

TEST(PhysMem, ReserveAfterAllocationPanics)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    pm.frameOf(1);
    EXPECT_THROW(pm.reserveRegion(4096, 4096), PanicError);
    setQuiet(false);
}

TEST(PhysMem, EmptyReservationRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    EXPECT_THROW(pm.reserveRegion(0, 4096), FatalError);
    setQuiet(false);
}

TEST(PhysMem, OvercommitWarnsButContinues)
{
    setQuiet(true);
    PhysMem pm(1_MiB, 12); // 256 frames
    for (Vpn v = 0; v < 300; ++v)
        pm.frameOf(v);
    EXPECT_TRUE(pm.overcommitted());
    EXPECT_EQ(pm.framesUsed(), 300u);
    // Mappings stay stable even past capacity.
    EXPECT_EQ(pm.frameOf(299), pm.frameOf(299));
    setQuiet(false);
}

TEST(PhysMem, DistinctVpnsGetDistinctFrames)
{
    PhysMem pm(8_MiB, 12);
    std::set<Pfn> frames;
    for (Vpn v = 1000; v < 1100; ++v)
        frames.insert(pm.frameOf(v));
    EXPECT_EQ(frames.size(), 100u);
}

} // anonymous namespace
} // namespace vmsim
