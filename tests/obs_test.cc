/**
 * @file
 * Tests for the observability layer: event emission and its exact
 * reconciliation with the VM counters, interval sampling and its
 * reconstruction of the aggregate VMCPI, the JSONL / Chrome-trace
 * exporters (including JSON validity of the trace), and the
 * StatsRegistry / StatsSink aggregation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/event.hh"
#include "obs/exporters.hh"
#include "obs/interval.hh"
#include "obs/latency.hh"
#include "obs/stats_registry.hh"
#include "obs/telemetry.hh"

namespace vmsim
{
namespace
{

/**
 * A minimal recursive-descent JSON validity checker — just enough to
 * assert that emitted Chrome traces and JSONL records parse, without
 * growing a parser dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::string w(word);
        if (s_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** A small but eventful configuration: ULTRIX with context switches. */
SimConfig
ultrixConfig()
{
    SimConfig cfg;
    cfg.kind = SystemKind::Ultrix;
    cfg.l1 = CacheParams{4_KiB, 32};
    cfg.l2 = CacheParams{64_KiB, 64};
    cfg.ctxSwitchInterval = 20'000;
    return cfg;
}

constexpr Counter kInstrs = 100'000;

TEST(ObsEvent, KindNamesAreStableAndDistinct)
{
    std::vector<std::string> names;
    for (unsigned k = 0; k < kNumEventKinds; ++k)
        names.push_back(eventKindName(static_cast<EventKind>(k)));
    EXPECT_EQ(names.front(), "itlb_miss");
    EXPECT_EQ(names.back(), "eviction");
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ObsEvent, MultiSinkFansOutAndIgnoresNull)
{
    CollectingSink a, b;
    MultiSink multi;
    EXPECT_TRUE(multi.empty());
    multi.add(&a);
    multi.add(nullptr);
    multi.add(&b);
    EXPECT_FALSE(multi.empty());

    TraceEvent ev;
    ev.kind = EventKind::PteFetch;
    multi.event(ev);
    EXPECT_EQ(a.countOf(EventKind::PteFetch), 1u);
    EXPECT_EQ(b.countOf(EventKind::PteFetch), 1u);
}

/**
 * The headline acceptance test: every counter the VM system keeps has
 * a matching number of emitted events over the measured region.
 */
TEST(ObsReconcile, EventCountsMatchVmCounters)
{
    CollectingSink collected;
    std::ostringstream jsonl_out;
    JsonlEventWriter jsonl(jsonl_out);
    MultiSink sinks;
    sinks.add(&collected);
    sinks.add(&jsonl);

    RunHooks hooks;
    hooks.sink = &sinks;
    Results r = runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);
    const VmStats &vm = r.vmStats();

    // The run must actually exercise the machinery being reconciled.
    // (ULTRIX's nested path runs the *root* handler: the UPTE load's
    // own D-TLB miss is resolved from wired physical memory.)
    ASSERT_GT(vm.uhandlerCalls, 0u);
    ASSERT_GT(vm.rhandlerCalls, 0u);
    ASSERT_GT(vm.pteLoads, 0u);
    ASSERT_GT(vm.ctxSwitches, 0u);

    using K = EventKind;
    using L = EventLevel;
    EXPECT_EQ(collected.countOf(K::ItlbMiss), vm.itlbMisses);
    EXPECT_EQ(collected.countOf(K::DtlbMiss), vm.dtlbMisses);
    EXPECT_EQ(collected.countOf(K::Interrupt), vm.interrupts);
    EXPECT_EQ(collected.countOf(K::CtxSwitch), vm.ctxSwitches);
    EXPECT_EQ(collected.countOf(K::PteFetch), vm.pteLoads);
    EXPECT_EQ(collected.countOf(K::HandlerEnter, L::User),
              vm.uhandlerCalls);
    EXPECT_EQ(collected.countOf(K::HandlerEnter, L::Kernel),
              vm.khandlerCalls);
    EXPECT_EQ(collected.countOf(K::HandlerEnter, L::Root),
              vm.rhandlerCalls);
    EXPECT_EQ(collected.countOf(K::HandlerExit),
              vm.uhandlerCalls + vm.khandlerCalls + vm.rhandlerCalls);

    // The JSONL writer saw the identical stream, one line per event.
    EXPECT_EQ(jsonl.eventsWritten(), collected.events().size());
    std::istringstream lines(jsonl_out.str());
    std::string line;
    Counter n_lines = 0;
    while (std::getline(lines, line)) {
        ++n_lines;
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
    }
    EXPECT_EQ(n_lines, jsonl.eventsWritten());
}

TEST(ObsReconcile, WarmupEventsAreNotReported)
{
    CollectingSink collected;
    RunHooks hooks;
    hooks.sink = &collected;
    // Heavy warmup, tiny measured region: if warmup leaked events the
    // counts could not match the (post-warmup-reset) counters.
    Results r = runOnce(ultrixConfig(), "gcc", 10'000, 100'000, hooks);
    EXPECT_EQ(collected.countOf(EventKind::ItlbMiss),
              r.vmStats().itlbMisses);
    EXPECT_EQ(collected.countOf(EventKind::PteFetch),
              r.vmStats().pteLoads);
}

TEST(ObsInterval, SeriesReconstructsAggregateVmcpi)
{
    IntervalSampler sampler(10'000);
    RunHooks hooks;
    hooks.sampler = &sampler;
    Results r = runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);

    ASSERT_EQ(sampler.intervals().size(), kInstrs / 10'000);
    Counter covered = 0;
    for (const IntervalRecord &iv : sampler.intervals()) {
        covered += iv.instrs();
        EXPECT_EQ(iv.results.userInstrs(), iv.instrs());
    }
    EXPECT_EQ(covered, kInstrs);

    auto vmcpi = [](const Results &res) { return res.vmcpi(); };
    auto mcpi = [](const Results &res) { return res.mcpi(); };
    auto icpi = [](const Results &res) { return res.interruptCpi(); };
    EXPECT_NEAR(sampler.weightedMetric(vmcpi), r.vmcpi(), 1e-9);
    EXPECT_NEAR(sampler.weightedMetric(mcpi), r.mcpi(), 1e-9);
    EXPECT_NEAR(sampler.weightedMetric(icpi), r.interruptCpi(), 1e-9);
}

TEST(ObsInterval, PartialTailIntervalIsClosedByFinish)
{
    IntervalSampler sampler(30'000);
    RunHooks hooks;
    hooks.sampler = &sampler;
    runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);
    // 100k instructions over 30k intervals: 3 full + 1 partial of 10k.
    ASSERT_EQ(sampler.intervals().size(), 4u);
    EXPECT_EQ(sampler.intervals().back().instrs(), 10'000u);
}

TEST(ObsInterval, CsvHasHeaderAndOneRowPerInterval)
{
    IntervalSampler sampler(25'000);
    RunHooks hooks;
    hooks.sampler = &sampler;
    runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);

    std::ostringstream out;
    sampler.writeCsv(out);
    std::istringstream lines(out.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header.rfind("start,end,instrs,", 0), 0u);
    EXPECT_NE(header.find("vmcpi"), std::string::npos);
    EXPECT_NE(header.find("pte_loads"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, sampler.intervals().size());
}

TEST(ObsInterval, SummaryAndJson)
{
    IntervalSampler sampler(20'000);
    RunHooks hooks;
    hooks.sampler = &sampler;
    runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);

    IntervalSummary s = summarizeIntervals(sampler.intervals());
    EXPECT_EQ(s.intervals, sampler.intervals().size());
    EXPECT_LE(s.minVmcpi, s.meanVmcpi);
    EXPECT_GE(s.maxVmcpi, s.meanVmcpi);

    Json j = intervalsToJson(sampler.intervals());
    EXPECT_TRUE(JsonChecker(j.dump()).valid());
}

TEST(ObsInterval, ZeroIntervalIsFatal)
{
    EXPECT_THROW(IntervalSampler(0), FatalError);
}

/**
 * Regression for the multicore stamp interaction: the quantum
 * scheduler rotates cores every 1K instructions, so a sampler fed
 * core-local instruction counts would see its timebase jump backward
 * at every rotation and close ragged (or no) intervals. On the global
 * timebase — which the multicore loops must use for setCurrentInstr
 * and tick alike, warmup included — the partition is exact and the
 * series still reconstructs the aggregate metrics.
 */
TEST(ObsInterval, MulticorePartitionsOnGlobalTimebase)
{
    SimConfig cfg = ultrixConfig();
    cfg.cores = 4;
    cfg.coreQuantum = 1'000;
    IntervalSampler sampler(10'000);
    RunHooks hooks;
    hooks.sampler = &sampler;
    Results r = runOnce(cfg, "gcc", kInstrs, 25'000, hooks);

    ASSERT_EQ(sampler.intervals().size(), kInstrs / 10'000);
    Counter covered = 0;
    for (const IntervalRecord &iv : sampler.intervals()) {
        EXPECT_EQ(iv.instrs(), 10'000u);
        covered += iv.instrs();
    }
    EXPECT_EQ(covered, kInstrs);

    auto vmcpi = [](const Results &res) { return res.vmcpi(); };
    auto total = [](const Results &res) { return res.totalCpi(); };
    EXPECT_NEAR(sampler.weightedMetric(vmcpi), r.vmcpi(), 1e-9);
    // totalCpi includes the shootdown component, so this also checks
    // that the per-interval VmStats deltas carry the new counters.
    EXPECT_NEAR(sampler.weightedMetric(total), r.totalCpi(), 1e-9);
    EXPECT_GT(r.vmStats().shootdownCycles, 0u);
}

TEST(ObsChromeTrace, TracedRunEmitsValidJson)
{
    std::ostringstream out;
    {
        ChromeTraceWriter chrome(out);
        RunHooks hooks;
        hooks.sink = &chrome;
        runOnce(ultrixConfig(), "gcc", 20'000, 0, hooks);
        chrome.durationEvent("cell 0", "sweep-cell", 0.0, 1500.0,
                             ChromeTraceWriter::kWallPid, 0,
                             {{"workload", "gcc"}});
        chrome.finish();
        chrome.finish(); // idempotent
    }
    const std::string text = out.str();
    EXPECT_TRUE(JsonChecker(text).valid());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("user-handler"), std::string::npos);
    EXPECT_NE(text.find("sweep-cell"), std::string::npos);
    // B/E slices must balance or the viewer shows dangling spans.
    std::size_t begins = 0, ends = 0, pos = 0;
    while ((pos = text.find("\"ph\":\"B\"", pos)) != std::string::npos) {
        ++begins;
        pos += 8;
    }
    pos = 0;
    while ((pos = text.find("\"ph\":\"E\"", pos)) != std::string::npos) {
        ++ends;
        pos += 8;
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
}

TEST(ObsChromeTrace, EscapesNamesInDurationEvents)
{
    std::ostringstream out;
    {
        ChromeTraceWriter chrome(out);
        chrome.durationEvent("quote\"back\\slash", "cat", 0, 1,
                             ChromeTraceWriter::kWallPid, 0);
        chrome.finish();
    }
    EXPECT_TRUE(JsonChecker(out.str()).valid());
}

TEST(ObsStatsRegistry, LookupReturnsSameInstanceAndDumpsInOrder)
{
    StatsRegistry registry;
    EXPECT_TRUE(registry.empty());
    CounterGroup &g1 = registry.counterGroup("zeta");
    CounterGroup &g2 = registry.counterGroup("alpha");
    EXPECT_EQ(&g1, &registry.counterGroup("zeta"));
    g1.add("x", 3);
    g2.add("y");
    registry.distribution("d").sample(2.0);
    registry.histogram("h", 0, 10, 5).sample(4.0);
    EXPECT_FALSE(registry.empty());

    std::string dump = registry.toJson().dump();
    EXPECT_TRUE(JsonChecker(dump).valid());
    // Registration order, not alphabetical.
    EXPECT_LT(dump.find("zeta"), dump.find("alpha"));

    registry.reset();
    EXPECT_EQ(registry.counterGroup("zeta").get("x"), 0u);
    EXPECT_EQ(registry.distribution("d").count(), 0u);
    EXPECT_EQ(registry.histogram("h", 0, 10, 5).count(), 0u);
}

TEST(ObsStatsRegistry, HistogramGeometryConflictWarnsAndKeepsFirst)
{
    StatsRegistry registry;
    Histogram &h = registry.histogram("g", 0.0, 10.0, 5);
    h.sample(1.0);
    // A later lookup with a different geometry warns and returns the
    // original histogram untouched.
    setQuiet(true);
    Histogram &again = registry.histogram("g", 0.0, 99.0, 7);
    setQuiet(false);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.numBuckets(), 5u);
    EXPECT_EQ(again.count(), 1u);

    // Prototype overload adopts log spacing.
    Histogram &lg =
        registry.histogram("lg", LatencyCollector::cycleHistogram());
    EXPECT_TRUE(lg.isLog());
}

TEST(ObsCollectingSink, CapsBufferAndCountsDropped)
{
    CollectingSink sink(3);
    TraceEvent ev;
    setQuiet(true); // swallow the one capacity warning
    for (int i = 0; i < 5; ++i)
        sink.event(ev);
    setQuiet(false);
    EXPECT_EQ(sink.events().size(), 3u);
    EXPECT_EQ(sink.droppedEvents(), 2u);
    EXPECT_EQ(sink.capacity(), 3u);
    sink.clear();
    EXPECT_EQ(sink.droppedEvents(), 0u);
    sink.event(ev);
    EXPECT_EQ(sink.events().size(), 1u);
}

TEST(ObsLatency, HistogramsReconcileWithCounters)
{
    LatencyCollector lat;
    RunHooks hooks;
    hooks.latency = &lat;
    Results r = runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);
    const VmStats &vm = r.vmStats();
    EXPECT_GT(vm.itlbMisses + vm.dtlbMisses, 0u);
    EXPECT_EQ(lat.mergedMissService().count(),
              vm.itlbMisses + vm.dtlbMisses);
    EXPECT_EQ(lat.mergedHwWalk().count(), vm.hwWalks);

    InvariantChecker checker(ultrixConfig());
    CheckReport rep = checker.checkAll(r, nullptr, nullptr, &lat);
    EXPECT_TRUE(rep.ok()) << rep.toString();

    StatsRegistry registry;
    exportLatency(lat, registry);
    std::string dump = registry.toJson().dump();
    EXPECT_TRUE(JsonChecker(dump).valid());
    EXPECT_NE(dump.find("latency.miss_service"), std::string::npos);
    EXPECT_NE(dump.find("tlb.itlb_lifetime"), std::string::npos);
}

TEST(ObsTelemetry, AccountingHeartbeatAndChecker)
{
    TelemetryOptions opts;
    opts.periodSeconds = 60.0; // only the final heartbeat will fire
    opts.progressPath = testing::TempDir() + "telemetry_progress.jsonl";
    opts.metricsPath = testing::TempDir() + "telemetry_metrics.prom";
    std::remove(opts.progressPath.c_str());

    SweepTelemetry tel(opts, 3, 2);
    EXPECT_TRUE(tel.enabled());
    tel.preloadDone(1); // one cell restored from a resume journal
    tel.start();

    tel.beginCell(0, 1);
    std::atomic<Counter> *prog = tel.progressCounter(0);
    ASSERT_NE(prog, nullptr);
    prog->store(500);

    TelemetrySnapshot snap = tel.snapshot();
    EXPECT_EQ(snap.totalCells, 3u);
    EXPECT_EQ(snap.done, 1u);
    EXPECT_EQ(snap.pending, 2u);
    ASSERT_EQ(snap.workers.size(), 2u);
    EXPECT_EQ(snap.workers[0].cell, 1);
    EXPECT_EQ(snap.workers[0].instrs, 500u);
    EXPECT_EQ(snap.workers[1].cell, -1);
    CheckReport rep;
    checkTelemetry(snap, false, rep);
    EXPECT_TRUE(rep.ok()) << rep.toString();

    tel.endCell(0, true);
    tel.beginCell(1, 2);
    tel.noteRetry(1);
    tel.endCell(1, false);
    tel.stop();

    TelemetrySnapshot fin = tel.snapshot();
    EXPECT_EQ(fin.done, 2u);
    EXPECT_EQ(fin.failed, 1u);
    EXPECT_EQ(fin.retried, 1u);
    EXPECT_EQ(fin.pending, 0u);
    CheckReport frep;
    checkTelemetry(fin, true, frep);
    EXPECT_TRUE(frep.ok()) << frep.toString();
    EXPECT_EQ(tel.cellsDone(), 2u);
    EXPECT_EQ(tel.cellsFailed(), 1u);

    // Final heartbeat: one valid JSON object per line in the JSONL...
    std::ifstream in(opts.progressPath);
    ASSERT_TRUE(in.is_open());
    std::string line, last;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
        last = line;
        ++lines;
    }
    EXPECT_GE(lines, 1u);
    EXPECT_NE(last.find("\"pending\""), std::string::npos);

    // ...and a Prometheus exposition with the headline gauges.
    std::ifstream prom(opts.metricsPath);
    ASSERT_TRUE(prom.is_open());
    std::ostringstream ss;
    ss << prom.rdbuf();
    const std::string text = ss.str();
    EXPECT_NE(text.find("# TYPE vmsim_sweep_cells_done gauge"),
              std::string::npos);
    EXPECT_NE(text.find("vmsim_sweep_cells_total 3"), std::string::npos);
    EXPECT_NE(text.find("vmsim_sweep_cells_pending 0"), std::string::npos);
}

TEST(ObsStatsSink, AggregatesEventStream)
{
    StatsRegistry registry;
    StatsSink sink(registry);
    RunHooks hooks;
    hooks.sink = &sink;
    Results r = runOnce(ultrixConfig(), "gcc", kInstrs, 0, hooks);
    const VmStats &vm = r.vmStats();

    const CounterGroup &events = registry.counterGroup("events");
    EXPECT_EQ(events.get("itlb_miss"), vm.itlbMisses);
    EXPECT_EQ(events.get("pte_fetch"), vm.pteLoads);
    EXPECT_EQ(events.get("ctx_switch"), vm.ctxSwitches);

    const CounterGroup &levels = registry.counterGroup("pte_fetch_levels");
    Counter by_level = levels.get("user") + levels.get("kernel") +
                       levels.get("root");
    EXPECT_EQ(by_level, vm.pteLoads);

    EXPECT_EQ(registry.distribution("handler_episodes").count(),
              vm.uhandlerCalls + vm.khandlerCalls + vm.rhandlerCalls);
}

TEST(ObsSweep, RunnerRecordsTimingsAndWritesArtifacts)
{
    SweepSpec spec;
    spec.systems({SystemKind::Ultrix, SystemKind::Mach})
        .workloads({"gcc"})
        .instructions(20'000)
        .warmup(Counter{0});

    ObsOptions obs;
    obs.interval = 5'000;
    obs.statsJson = testing::TempDir() + "obs_sweep_stats.json";
    obs.chromeTrace = testing::TempDir() + "obs_sweep_trace.json";

    SweepRunner runner(2);
    runner.observe(obs);
    SweepResults res = runner.run(spec);

    ASSERT_EQ(res.timings().size(), res.size());
    for (const CellTiming &t : res.timings()) {
        EXPECT_GT(t.wallSeconds, 0.0);
        EXPECT_GT(t.instrsPerSec, 0.0);
        EXPECT_LT(t.worker, 2u);
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.is_open()) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string stats = slurp(obs.statsJson);
    EXPECT_TRUE(JsonChecker(stats).valid());
    EXPECT_NE(stats.find("sweep.wall_seconds"), std::string::npos);
    EXPECT_NE(stats.find("interval_summary"), std::string::npos);

    std::string trace = slurp(obs.chromeTrace);
    EXPECT_TRUE(JsonChecker(trace).valid());
    EXPECT_NE(trace.find("sweep-cell"), std::string::npos);
}

TEST(ObsOptions, ParseAndDefaults)
{
    ObsOptions none;
    EXPECT_FALSE(none.any());

    const char *argv[] = {"bench", "--trace-events=ev.jsonl",
                          "--chrome-trace=tr.json",
                          "--stats-json=st.json", "--interval=1000"};
    BenchOptions opts =
        BenchOptions::parse(5, const_cast<char **>(argv));
    EXPECT_TRUE(opts.obs.any());
    EXPECT_EQ(opts.obs.traceEvents, "ev.jsonl");
    EXPECT_EQ(opts.obs.chromeTrace, "tr.json");
    EXPECT_EQ(opts.obs.statsJson, "st.json");
    EXPECT_EQ(opts.obs.interval, 1000u);
}

} // anonymous namespace
} // namespace vmsim
