/**
 * @file
 * Tests for PariscVm: the single-handler hashed-table refill (paper
 * Table 4: 20 instructions, variable PTE loads), 16-byte PTE traffic,
 * the absence of nested misses, and unpartitioned TLBs.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/parisc_vm.hh"

namespace vmsim
{
namespace
{

struct Fixture
{
    Fixture()
        : mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64}),
          pm(8_MiB, 12),
          vm(mem, pm, TlbParams{128, 0, TlbRepl::Random},
             TlbParams{128, 0, TlbRepl::Random})
    {}

    MemSystem mem;
    PhysMem pm;
    PariscVm vm;
};

TEST(PariscVm, DefaultCostsMatchTable4)
{
    EXPECT_EQ(PariscVm::pariscDefaultCosts().userInstrs, 20u);
}

TEST(PariscVm, RejectsPartitionedTlb)
{
    setQuiet(true);
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    EXPECT_THROW(
        PariscVm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16}),
        FatalError);
    setQuiet(false);
}

TEST(PariscVm, SingleHandlerSingleInterrupt)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 1u);
    EXPECT_EQ(s.uhandlerInstrs, 20u);
    EXPECT_EQ(s.khandlerCalls, 0u);
    EXPECT_EQ(s.rhandlerCalls, 0u);
    EXPECT_EQ(s.interrupts, 1u);
    EXPECT_GE(s.pteLoads, 1u);
}

TEST(PariscVm, NoNestedMissesEver)
{
    // The handler uses physical addresses: no kernel/root handlers
    // can run regardless of access pattern.
    Fixture f;
    for (int i = 0; i < 1000; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096 * 7, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.khandlerCalls, 0u);
    EXPECT_EQ(s.rhandlerCalls, 0u);
    EXPECT_EQ(s.interrupts, s.uhandlerCalls);
    // Only user-level PTE traffic exists.
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteKernel).accesses, 0u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteRoot).accesses, 0u);
}

TEST(PariscVm, ChainWalkCostsExtraPteLoads)
{
    Fixture f;
    const HashedPageTable &pt = f.vm.pageTable();
    // Find two user pages whose VPNs collide in the hash.
    Vpn a = 0x10000000 >> 12;
    Vpn b = 0;
    for (Vpn v = a + 1; v < (kUserSpan >> 12); ++v) {
        if (pt.hashOf(v) == pt.hashOf(a)) {
            b = v;
            break;
        }
    }
    ASSERT_NE(b, 0u);
    f.vm.dataRef(Access{a << 12, 0, false});
    Counter loads_a = f.vm.vmStats().pteLoads;
    EXPECT_EQ(loads_a, 1u);
    f.vm.dataRef(Access{b << 12, 0, false});
    // The collider visits the chain head plus its own entry.
    EXPECT_EQ(f.vm.vmStats().pteLoads, loads_a + 2);
}

TEST(PariscVm, SixteenBytePtesHitDCache)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // One 16-byte aligned PTE read: one D-side access in 32B lines.
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteUser).accesses, 1u);
    // Re-walking the same entry after TLB eviction would hit the
    // D-cache line; simulate by another page hashing elsewhere --
    // at minimum the first load was a (cold) miss:
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteUser).l1Misses, 1u);
}

TEST(PariscVm, HandlerTouchesICache)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(f.mem.stats().instOf(AccessClass::HandlerFetch).accesses,
              20u);
    EXPECT_TRUE(f.mem.l1i().probe(kUserHandlerBase));
}

TEST(PariscVm, AllTlbSlotsUsable)
{
    Fixture f;
    for (int i = 0; i < 128; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    EXPECT_EQ(f.vm.dtlb()->validEntries(), 128u);
}

TEST(PariscVm, AverageSearchDepthNearPaper)
{
    // Touch ~1500 pages; average chain search depth should sit near
    // the paper's 1.25-1.5 band for a 2:1 table.
    Fixture f;
    Random rng(3);
    for (int i = 0; i < 4000; ++i) {
        Addr page = rng.uniform(1500);
        f.vm.dataRef(Access{0x10000000 + page * 4096, 0, false});
    }
    double avg = f.vm.pageTable().searchDepth().mean();
    EXPECT_GE(avg, 1.0);
    EXPECT_LT(avg, 1.6);
}

TEST(PariscVm, CustomHptRatio)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    PariscVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0},
                PariscVm::pariscDefaultCosts(), 12, 1, 4);
    EXPECT_EQ(vm.pageTable().numBuckets(), 8192u);
}

TEST(PariscVm, Name)
{
    Fixture f;
    EXPECT_EQ(f.vm.name(), "PA-RISC");
}

} // anonymous namespace
} // namespace vmsim
