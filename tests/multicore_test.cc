/**
 * @file
 * Tests for the multicore machine: the core-indexed Access API, the
 * quantum scheduler's scalar/batched bit-identity, shootdown counter
 * conservation, and the promise that --cores=1 is byte-identical to
 * the legacy single-core path everywhere (results, sweep CSV, spec
 * fingerprints).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/invariants.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/event.hh"
#include "obs/interval.hh"

namespace vmsim
{
namespace
{

constexpr Counter kInstrs = 40'000;
constexpr Counter kWarmup = 10'000;

SimConfig
baseConfig(SystemKind kind = SystemKind::Ultrix)
{
    SimConfig cfg;
    cfg.kind = kind;
    cfg.l1 = CacheParams{8_KiB, 32};
    cfg.l2 = CacheParams{256_KiB, 64};
    cfg.ctxSwitchInterval = 5'000;
    return cfg;
}

std::string
violationsOf(const CheckReport &rep)
{
    std::ostringstream oss;
    for (const CheckViolation &v : rep.violations())
        oss << v.toString() << '\n';
    return oss.str();
}

/**
 * Fields that only matter at cores > 1 must be completely inert at
 * cores == 1: same Results, same config fingerprint text, and a
 * byte-identical sweep CSV against a spec that never heard of them.
 */
TEST(Multicore, SingleCoreIsByteIdenticalToLegacyPath)
{
    SweepSpec plain;
    plain.base(baseConfig())
        .systems({SystemKind::Ultrix, SystemKind::Intel,
                  SystemKind::Notlb})
        .workloads({"gcc"})
        .instructions(kInstrs)
        .warmup(kWarmup);

    SimConfig touched = baseConfig();
    touched.cores = 1;
    touched.coreQuantum = 123;   // inert: no scheduler at one core
    touched.sharedL2Tlb = false; // inert: one core, one L2 slot
    touched.shootdownIpiCycles = 9999;
    SweepSpec withKnobs = plain;
    withKnobs.base(touched);

    EXPECT_EQ(touched.toString(), baseConfig().toString());
    EXPECT_EQ(specFingerprint(withKnobs), specFingerprint(plain));

    SweepResults a = SweepRunner(1).run(plain);
    SweepResults b = SweepRunner(1).run(withKnobs);
    std::ostringstream csvA, csvB;
    a.writeCsv(csvA);
    b.writeCsv(csvB);
    EXPECT_EQ(csvA.str(), csvB.str());
    EXPECT_EQ(csvA.str().empty(), false);
}

/** Scalar and batched multicore loops execute the identical global
 *  instruction stream: every counter — per-core included — matches. */
TEST(Multicore, ScalarAndBatchedLoopsAreCounterIdentical)
{
    for (unsigned cores : {2u, 4u}) {
        SimConfig cfg = baseConfig();
        cfg.cores = cores;
        cfg.coreQuantum = 1'000;
        cfg.l2TlbEntries = 256;

        RunHooks scalar_hooks;
        scalar_hooks.batch = 1;
        Results scalar =
            runOnce(cfg, "gcc", kInstrs, kWarmup, scalar_hooks);

        for (std::size_t batch : {64ul, 4096ul}) {
            RunHooks hooks;
            hooks.batch = batch;
            Results batched =
                runOnce(cfg, "gcc", kInstrs, kWarmup, hooks);
            CheckReport rep = diffResults(scalar, batched, "scalar",
                                          "batched");
            EXPECT_TRUE(rep.ok())
                << "cores=" << cores << " batch=" << batch << "\n"
                << violationsOf(rep);
        }
    }
}

/** The shootdown cost model's books must balance exactly. */
TEST(Multicore, ShootdownCountersConserve)
{
    SimConfig cfg = baseConfig();
    cfg.cores = 4;
    cfg.coreQuantum = 1'000;

    CollectingSink sink;
    RunHooks hooks;
    hooks.sink = &sink;
    Results r = runOnce(cfg, "gcc", kInstrs, kWarmup, hooks);
    const VmStats &vm = r.vmStats();

    // 40K measured instructions / 5K interval = 8 context switches,
    // each an initiator flush + a broadcast to the 3 peers.
    EXPECT_EQ(vm.ctxSwitches, 8u);
    EXPECT_EQ(vm.shootdownsSent, vm.ctxSwitches);
    EXPECT_EQ(vm.shootdownsRecv, vm.shootdownsSent * 3);
    EXPECT_EQ(vm.shootdownCycles,
              vm.shootdownsRecv * (cfg.shootdownIpiCycles +
                                   cfg.shootdownHandlerCycles));
    EXPECT_EQ(sink.countOf(EventKind::Shootdown), vm.shootdownsRecv);
    EXPECT_GT(r.shootdownCpi(), 0.0);

    // Per-core books: each counter partitions the aggregate, and the
    // quantum scheduler accounts for every measured instruction.
    ASSERT_EQ(vm.perCore.size(), 4u);
    Counter instrs = 0, itlb = 0, dtlb = 0, ctx = 0, sent = 0, recv = 0;
    for (const CoreStats &cs : vm.perCore) {
        instrs += cs.instrs;
        itlb += cs.itlbMisses;
        dtlb += cs.dtlbMisses;
        ctx += cs.ctxSwitches;
        sent += cs.shootdownsSent;
        recv += cs.shootdownsRecv;
    }
    EXPECT_EQ(instrs, r.userInstrs());
    EXPECT_EQ(itlb, vm.itlbMisses);
    EXPECT_EQ(dtlb, vm.dtlbMisses);
    EXPECT_EQ(ctx, vm.ctxSwitches);
    EXPECT_EQ(sent, vm.shootdownsSent);
    EXPECT_EQ(recv, vm.shootdownsRecv);

    CheckReport audit = InvariantChecker(cfg).check(r);
    EXPECT_TRUE(audit.ok()) << violationsOf(audit);
}

/** Organizations without TLB state have nothing to shoot down: the
 *  factory builds them single-instance even under a multicore
 *  schedule, every instruction is still accounted (to slot 0), and
 *  the full invariant audit — including org.no-shootdowns — holds. */
TEST(Multicore, TlblessOrganizationsNeverShootDown)
{
    for (SystemKind kind :
         {SystemKind::Notlb, SystemKind::Base, SystemKind::Spur}) {
        SimConfig four = baseConfig(kind);
        four.cores = 4;
        four.coreQuantum = 1'000;

        Results r4 = runOnce(four, "gcc", kInstrs, kWarmup);
        EXPECT_EQ(r4.vmStats().shootdownsSent, 0u);
        EXPECT_EQ(r4.vmStats().shootdownsRecv, 0u);
        EXPECT_EQ(r4.vmStats().shootdownCycles, 0u);
        EXPECT_DOUBLE_EQ(r4.shootdownCpi(), 0.0);
        ASSERT_EQ(r4.vmStats().perCore.size(), 1u);
        EXPECT_EQ(r4.vmStats().perCore[0].instrs, r4.userInstrs());

        CheckReport audit = InvariantChecker(four).check(r4);
        EXPECT_TRUE(audit.ok())
            << kindName(kind) << "\n" << violationsOf(audit);
    }
}

/** A 4-core Results round-trips through the sweep journal format with
 *  its per-core array intact. */
TEST(Multicore, ResultsSerializeRoundTripsPerCoreStats)
{
    SimConfig cfg = baseConfig();
    cfg.cores = 4;
    cfg.coreQuantum = 1'000;
    Results r = runOnce(cfg, "gcc", kInstrs, kWarmup);
    ASSERT_EQ(r.vmStats().perCore.size(), 4u);

    Expected<Results> back =
        Results::deserialize(r.serialize(), cfg.costs);
    ASSERT_TRUE(back.ok());
    CheckReport rep =
        diffResults(r, back.value(), "original", "round-trip");
    EXPECT_TRUE(rep.ok()) << violationsOf(rep);
    EXPECT_DOUBLE_EQ(back.value().shootdownCpi(), r.shootdownCpi());
}

/** Multicore cells in a parallel sweep stay deterministic: the CSV is
 *  byte-identical between a serial and a 2-worker run. */
TEST(Multicore, ParallelSweepIsDeterministicAtFourCores)
{
    SimConfig base = baseConfig();
    base.cores = 4;
    base.coreQuantum = 2'000;
    SweepSpec spec;
    spec.base(base)
        .systems({SystemKind::Ultrix, SystemKind::Mach})
        .workloads({"gcc", "vortex"})
        .instructions(10'000)
        .warmup(2'000);

    SweepResults serial = SweepRunner(1).run(spec);
    SweepResults parallel = SweepRunner(2).run(spec);
    std::ostringstream a, b;
    serial.writeCsv(a);
    parallel.writeCsv(b);
    EXPECT_EQ(a.str(), b.str());
}

/** The deprecated single-address entry points still drive the new
 *  Access path (core 0) for downstream callers. */
TEST(Multicore, DeprecatedScalarWrappersStillWork)
{
    System sys(baseConfig());
    VmSystem &vm = sys.vm();
    vm.instRef(Access{Addr{0x1000}});
    vm.dataRef(Access{Addr{0x2000}, 0, true});
    vm.contextSwitch();
    EXPECT_EQ(vm.vmStats().ctxSwitches, 1u);
    EXPECT_EQ(vm.mem().stats().instOf(AccessClass::User).accesses, 1u);
    EXPECT_EQ(vm.mem().stats().dataOf(AccessClass::User).accesses, 1u);
}

} // anonymous namespace
} // namespace vmsim
