/**
 * @file
 * Property-based tests: invariants that must hold across parameter
 * sweeps of the whole simulator — accounting conservation, monotone
 * responses to capacity, cost-model linearity, and cross-system
 * structural facts. These are the paper's "sanity physics".
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/factory.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "os/parisc_vm.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

SimConfig
cfgFor(SystemKind kind, std::uint64_t l1 = 32_KiB,
       std::uint64_t l2 = 1_MiB, unsigned l1line = 32,
       unsigned l2line = 64)
{
    SimConfig cfg;
    cfg.kind = kind;
    cfg.l1 = CacheParams{l1, l1line};
    cfg.l2 = CacheParams{l2, l2line};
    cfg.seed = 4242;
    return cfg;
}

constexpr Counter kN = 60000;
constexpr Counter kW = 20000;

const SystemKind kAllKinds[] = {
    SystemKind::Ultrix, SystemKind::Mach,       SystemKind::Intel,
    SystemKind::Parisc, SystemKind::Notlb,      SystemKind::Base,
    SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur,
};

// ------------------------------------------------- accounting invariants

class AccountingProperty
    : public ::testing::TestWithParam<std::tuple<SystemKind, const char *>>
{};

TEST_P(AccountingProperty, EventArithmeticHolds)
{
    auto [kind, workload] = GetParam();
    auto trace = makeWorkload(workload, 99);
    System sys(cfgFor(kind));
    Results r = sys.run(*trace, kN, workload, kW);
    const VmStats &s = r.vmStats();
    const MemSystemStats &m = r.memStats();

    // 1. Handler instruction fetches on the I-side equal the handler
    //    instruction counts.
    EXPECT_EQ(m.instOf(AccessClass::HandlerFetch).accesses,
              s.uhandlerInstrs + s.khandlerInstrs + s.rhandlerInstrs);

    // 2. L2 misses never exceed L1 misses never exceed accesses,
    //    per class and side.
    for (unsigned c = 0; c < kNumAccessClasses; ++c) {
        for (const ClassCounters *ctr : {&m.inst[c], &m.data[c]}) {
            EXPECT_LE(ctr->l2Misses, ctr->l1Misses);
            EXPECT_LE(ctr->l1Misses, ctr->accesses);
        }
    }

    // 3. User instruction fetches equal instructions executed.
    EXPECT_EQ(m.instOf(AccessClass::User).accesses, r.userInstrs());

    // 4. Interrupt count is exactly the handler-invocation count for
    //    software schemes and zero for hardware schemes.
    if (kindUsesSoftwareRefill(kind)) {
        EXPECT_EQ(s.interrupts,
                  s.uhandlerCalls + s.khandlerCalls + s.rhandlerCalls);
    } else {
        EXPECT_EQ(s.interrupts, 0u);
    }

    // 5. Derived metrics are finite and non-negative.
    EXPECT_GE(r.mcpi(), 0.0);
    EXPECT_GE(r.vmcpi(), 0.0);
    EXPECT_GE(r.totalCpi(), 1.0);
}

TEST_P(AccountingProperty, InterruptCostLinearity)
{
    auto [kind, workload] = GetParam();
    Results r = runOnce(cfgFor(kind), workload, kN, kW);
    // interruptCpiAt is linear in the cost: the paper's 10/50/200
    // sweep needs no re-simulation.
    double at10 = r.interruptCpiAt(10);
    double at50 = r.interruptCpiAt(50);
    double at200 = r.interruptCpiAt(200);
    EXPECT_DOUBLE_EQ(at50, 5 * at10);
    EXPECT_DOUBLE_EQ(at200, 20 * at10);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, AccountingProperty,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values("gcc", "vortex", "ijpeg")));

// --------------------------------------------------- structural properties

class TlbSystemProperty : public ::testing::TestWithParam<SystemKind>
{};

TEST_P(TlbSystemProperty, BiggerTlbNeverWalksMore)
{
    SystemKind kind = GetParam();
    SimConfig small = cfgFor(kind);
    small.tlbEntries = 32;
    small.tlbProtectedSlots = 8;
    SimConfig big = cfgFor(kind);
    big.tlbEntries = 512;
    big.tlbProtectedSlots = 8;

    Results rs = runOnce(small, "vortex", kN, kW);
    Results rb = runOnce(big, "vortex", kN, kW);
    Counter walks_small = rs.vmStats().uhandlerCalls + rs.vmStats().hwWalks;
    Counter walks_big = rb.vmStats().uhandlerCalls + rb.vmStats().hwWalks;
    // Random replacement is not strictly inclusive, but a 16x capacity
    // gap must dominate noise.
    EXPECT_LT(walks_big, walks_small);
}

INSTANTIATE_TEST_SUITE_P(TlbSystems, TlbSystemProperty,
                         ::testing::Values(SystemKind::Ultrix,
                                           SystemKind::Mach,
                                           SystemKind::Intel,
                                           SystemKind::Parisc,
                                           SystemKind::HwInverted,
                                           SystemKind::HwMips));

TEST(Property, NotlbHandlersTrackL2Misses)
{
    // For NOTLB the user-handler count equals the user-reference L2
    // miss count by construction.
    Results r = runOnce(cfgFor(SystemKind::Notlb), "gcc", kN, kW);
    const MemSystemStats &m = r.memStats();
    Counter user_l2_misses = m.instOf(AccessClass::User).l2Misses +
                             m.dataOf(AccessClass::User).l2Misses;
    EXPECT_EQ(r.vmStats().uhandlerCalls, user_l2_misses);
}

TEST(Property, IntelWalksExactlyTwiceItsPteLoads)
{
    Results r = runOnce(cfgFor(SystemKind::Intel), "vortex", kN, kW);
    EXPECT_EQ(r.vmStats().pteLoads, 2 * r.vmStats().hwWalks);
}

TEST(Property, PariscPteLoadsAtLeastWalks)
{
    Results r = runOnce(cfgFor(SystemKind::Parisc), "vortex", kN, kW);
    const VmStats &s = r.vmStats();
    EXPECT_GE(s.pteLoads, s.uhandlerCalls);
    // Average chain search depth stays in the paper's band.
    double per_walk = static_cast<double>(s.pteLoads) /
                      static_cast<double>(s.uhandlerCalls);
    EXPECT_LT(per_walk, 2.0);
}

// ----------------------------------------------- capacity-response sweeps

class CacheSizeProperty
    : public ::testing::TestWithParam<std::tuple<SystemKind, std::uint64_t>>
{};

TEST_P(CacheSizeProperty, RunsAndAccountsAtEveryL1Size)
{
    auto [kind, l1] = GetParam();
    Results r = runOnce(cfgFor(kind, l1), "gcc", 40000, 15000);
    EXPECT_GT(r.totalCpi(), 1.0);
    EXPECT_EQ(r.userInstrs(), 40000u);
}

INSTANTIATE_TEST_SUITE_P(
    L1Grid, CacheSizeProperty,
    ::testing::Combine(::testing::Values(SystemKind::Ultrix,
                                         SystemKind::Intel,
                                         SystemKind::Notlb),
                       ::testing::Values(1_KiB, 4_KiB, 16_KiB, 64_KiB,
                                         128_KiB)));

TEST(Property, LargerL1ReducesUserMissTraffic)
{
    // Compare raw L1 user miss counts (same trace, same linesize):
    // capacity growth by 64x must reduce misses for a cacheable
    // workload.
    Results small = runOnce(cfgFor(SystemKind::Base, 1_KiB), "gcc", kN,
                            kW);
    Results big = runOnce(cfgFor(SystemKind::Base, 64_KiB), "gcc", kN,
                          kW);
    Counter miss_small =
        small.memStats().instOf(AccessClass::User).l1Misses +
        small.memStats().dataOf(AccessClass::User).l1Misses;
    Counter miss_big = big.memStats().instOf(AccessClass::User).l1Misses +
                       big.memStats().dataOf(AccessClass::User).l1Misses;
    EXPECT_LT(miss_big, miss_small);
}

TEST(Property, LargerL2HelpsNotlbMost)
{
    // The paper: "the software-oriented scheme places a much larger
    // dependence on the cache system". Growing L2 from 1 MB to 4 MB
    // must cut NOTLB's VMCPI by a larger *relative* factor than
    // ULTRIX's on the same workload.
    auto rel_gain = [](SystemKind kind) {
        Results at1 = runOnce(cfgFor(kind, 32_KiB, 1_MiB), "gcc", kN, kW);
        Results at4 = runOnce(cfgFor(kind, 32_KiB, 4_MiB), "gcc", kN, kW);
        return at4.vmcpi() / std::max(at1.vmcpi(), 1e-12);
    };
    double notlb = rel_gain(SystemKind::Notlb);
    double ultrix = rel_gain(SystemKind::Ultrix);
    EXPECT_LT(notlb, ultrix * 1.05);
}

// ------------------------------------------------------ seed determinism

class SeedProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SeedProperty, IdenticalSeedsIdenticalResults)
{
    SimConfig cfg = cfgFor(SystemKind::Mach);
    cfg.seed = GetParam();
    Results a = runOnce(cfg, "vortex", 30000, 10000);
    Results b = runOnce(cfg, "vortex", 30000, 10000);
    EXPECT_EQ(a.vmStats().interrupts, b.vmStats().interrupts);
    EXPECT_EQ(a.vmStats().pteLoads, b.vmStats().pteLoads);
    EXPECT_DOUBLE_EQ(a.totalCpi(), b.totalCpi());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(1u, 7u, 12345u, 0xdeadbeefu));

// ------------------------------------------------- cost-model properties

TEST(Property, CostModelScalesComponentsLinearly)
{
    SimConfig cfg = cfgFor(SystemKind::Ultrix);
    Results r1 = runOnce(cfg, "gcc", kN, kW);
    cfg.costs.l1MissCycles = 40; // 2x
    cfg.costs.l2MissCycles = 1000;
    Results r2 = runOnce(cfg, "gcc", kN, kW);
    // Same trace, same caches: miss counts identical, so MCPI doubles.
    EXPECT_NEAR(r2.mcpi(), 2 * r1.mcpi(), 1e-9);
}

TEST(Property, HandlerLengthScalesUhandlerComponent)
{
    SimConfig cfg = cfgFor(SystemKind::Parisc);
    Results r1 = runOnce(cfg, "gcc", kN, kW);
    cfg.overrideHandlerCosts = true;
    cfg.handlerCosts = PariscVm::pariscDefaultCosts();
    cfg.handlerCosts.userInstrs = 40; // 2x the paper's 20
    Results r2 = runOnce(cfg, "gcc", kN, kW);
    EXPECT_NEAR(r2.vmcpiBreakdown().uhandler,
                2 * r1.vmcpiBreakdown().uhandler, 1e-9);
}


// --------------------------------------------------- cross-system facts

TEST(Property, UltrixAndNotlbShareWalkCosts)
{
    // The paper's NOTLB/ULTRIX pairing requires identical walk cost
    // structure: same handler lengths, same PTE sizes, so measured
    // differences isolate the TLB. Verify the cost tables agree.
    HandlerCosts u = defaultHandlerCosts(SystemKind::Ultrix);
    HandlerCosts n = defaultHandlerCosts(SystemKind::Notlb);
    EXPECT_EQ(u.userInstrs, n.userInstrs);
    EXPECT_EQ(u.rootInstrs, n.rootInstrs);
}

TEST(Property, InterruptFreeSchemesHaveNoHandlerFetches)
{
    for (SystemKind kind : {SystemKind::Intel, SystemKind::HwInverted,
                            SystemKind::HwMips, SystemKind::Spur,
                            SystemKind::Base}) {
        Results r = runOnce(cfgFor(kind), "vortex", 30000, 10000);
        EXPECT_EQ(r.memStats().instOf(AccessClass::HandlerFetch).accesses,
                  0u)
            << kindName(kind);
    }
}

TEST(Property, PollutionIsBoundedByVmTraffic)
{
    // VM-inflicted user misses can't exceed the number of lines the
    // VM mechanism itself touched (each VM access displaces at most
    // one line per level). Sanity bound, loose by design.
    for (SystemKind kind : {SystemKind::Ultrix, SystemKind::Mach,
                            SystemKind::Parisc}) {
        auto base = runOnce(cfgFor(SystemKind::Base), "gcc", kN, kW);
        auto r = runOnce(cfgFor(kind), "gcc", kN, kW);
        const auto &m = r.memStats();
        Counter vm_accesses =
            m.instOf(AccessClass::HandlerFetch).accesses +
            m.dataOf(AccessClass::PteUser).accesses +
            m.dataOf(AccessClass::PteKernel).accesses +
            m.dataOf(AccessClass::PteRoot).accesses;
        Counter base_user =
            base.memStats().instOf(AccessClass::User).l1Misses +
            base.memStats().dataOf(AccessClass::User).l1Misses;
        Counter vm_user = m.instOf(AccessClass::User).l1Misses +
                          m.dataOf(AccessClass::User).l1Misses;
        if (vm_user > base_user) {
            EXPECT_LE(vm_user - base_user, 2 * vm_accesses)
                << kindName(kind);
        }
    }
}

TEST(Property, WorkloadsAgreeAcrossSystemBoundary)
{
    // The same (workload, seed) presents the identical reference
    // stream to every system: user access counts must match exactly.
    Counter expect = 0;
    for (SystemKind kind : kAllKinds) {
        Results r = runOnce(cfgFor(kind), "vortex", 30000, 0);
        Counter user = r.memStats().instOf(AccessClass::User).accesses +
                       r.memStats().dataOf(AccessClass::User).accesses;
        if (expect == 0)
            expect = user;
        EXPECT_EQ(user, expect) << kindName(kind);
    }
}

TEST(Property, UnifiedL2NeverSplitsClassCounters)
{
    // Unified L2 must not change *which* counters exist — only their
    // values. Run both and compare structure via total accesses.
    SimConfig split_cfg = cfgFor(SystemKind::Ultrix);
    SimConfig uni_cfg = split_cfg;
    uni_cfg.unifiedL2 = true;
    Results split = runOnce(split_cfg, "gcc", 30000, 10000);
    Results uni = runOnce(uni_cfg, "gcc", 30000, 10000);
    EXPECT_EQ(split.memStats().instOf(AccessClass::User).accesses,
              uni.memStats().instOf(AccessClass::User).accesses);
    EXPECT_EQ(split.memStats().dataOf(AccessClass::User).accesses,
              uni.memStats().dataOf(AccessClass::User).accesses);
}

} // anonymous namespace
} // namespace vmsim
