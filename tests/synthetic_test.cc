/**
 * @file
 * Tests for the synthetic workload toolkit and the three SPEC'95
 * stand-ins: determinism, address-range containment, locality
 * profiles, and the relative orderings the paper's analysis depends on
 * (vortex has the largest data-page working set; ijpeg the smallest).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "base/logging.hh"
#include "base/units.hh"
#include "pt/page_table.hh"
#include "trace/synthetic/components.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

// ------------------------------------------------------------ components

TEST(ZipfSampler, UniformWhenSkewZero)
{
    ZipfSampler z(4, 0.0);
    Random rng(1);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSampler, SkewFavorsLowRanks)
{
    ZipfSampler z(1000, 1.0);
    Random rng(2);
    int top10 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (z.sample(rng) < 10)
            ++top10;
    // With s=1 over 1000 items, the top 10 hold ~39% of the mass.
    EXPECT_GT(top10, n / 4);
    EXPECT_LT(top10, n / 2);
}

TEST(ZipfSampler, InRange)
{
    ZipfSampler z(17, 0.8);
    Random rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 17u);
}

TEST(ZipfSampler, EmptyRejected)
{
    setQuiet(true);
    EXPECT_THROW(ZipfSampler(0, 1.0), FatalError);
    setQuiet(false);
}

TEST(StreamWalker, SequentialWithWrap)
{
    StreamWalker w(Region{0x1000, 64}, 16);
    Random rng(1);
    EXPECT_EQ(w.nextAddr(rng), 0x1000u);
    EXPECT_EQ(w.nextAddr(rng), 0x1010u);
    EXPECT_EQ(w.nextAddr(rng), 0x1020u);
    EXPECT_EQ(w.nextAddr(rng), 0x1030u);
    EXPECT_EQ(w.nextAddr(rng), 0x1000u); // wrapped
    w.restart();
    EXPECT_EQ(w.nextAddr(rng), 0x1000u);
}

TEST(PointerChase, VisitsEveryNodeOncePerLap)
{
    const std::uint64_t n = 64;
    PointerChase pc(Region{0x2000, 64 * 64}, n, 64, 5);
    Random rng(1);
    std::set<Addr> seen;
    for (std::uint64_t i = 0; i < n; ++i)
        seen.insert(pc.nextAddr(rng));
    EXPECT_EQ(seen.size(), n) << "cycle must visit every node per lap";
    // Second lap revisits exactly the same addresses.
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_TRUE(seen.count(pc.nextAddr(rng)));
}

TEST(PointerChase, PoorSpatialLocality)
{
    PointerChase pc(Region{0, 4096 * 64}, 4096, 64, 9);
    Random rng(1);
    Addr prev = pc.nextAddr(rng);
    unsigned near = 0;
    for (int i = 0; i < 1000; ++i) {
        Addr cur = pc.nextAddr(rng);
        if (cur > prev ? cur - prev <= 128 : prev - cur <= 128)
            ++near;
        prev = cur;
    }
    // Successive nodes almost never land on neighboring lines.
    EXPECT_LT(near, 30u);
}

TEST(PointerChase, InvalidConfigs)
{
    setQuiet(true);
    EXPECT_THROW(PointerChase(Region{0, 64}, 1, 64, 1), FatalError);
    EXPECT_THROW(PointerChase(Region{0, 64}, 4, 2, 1), FatalError);
    EXPECT_THROW(PointerChase(Region{0, 64}, 4, 64, 1), FatalError);
    setQuiet(false);
}

TEST(StackModel, StaysInRegion)
{
    Region r{0x7ff00000, 64_KiB};
    StackModel s(r, 96, 0.2);
    Random rng(4);
    for (int i = 0; i < 100000; ++i) {
        Addr a = s.nextAddr(rng);
        ASSERT_GE(a, r.base);
        ASSERT_LT(a, r.end());
    }
}

TEST(StackModel, ReferencesClusterNearTop)
{
    StackModel s(Region{0, 64_KiB}, 128, 0.0); // top never moves
    Random rng(5);
    Addr top = s.top();
    for (int i = 0; i < 1000; ++i) {
        Addr a = s.nextAddr(rng);
        EXPECT_GE(a, top);
        EXPECT_LT(a, top + 128);
    }
}

TEST(ZipfRegionAccess, StaysInRegion)
{
    Region r{0x10000000, 1_MiB};
    ZipfRegionAccess z(r, 64, 1.0, 4, 11);
    Random rng(6);
    for (int i = 0; i < 50000; ++i) {
        Addr a = z.nextAddr(rng);
        ASSERT_GE(a, r.base);
        ASSERT_LT(a, r.end());
    }
}

TEST(ZipfRegionAccess, ClusteredLayoutConcentratesPages)
{
    // Default (identity) layout: hot records share the low pages.
    Region r{0, 1_MiB};
    ZipfRegionAccess z(r, 64, 1.2, 1, 1, /*scatter=*/false);
    Random rng(7);
    std::set<Addr> pages;
    for (int i = 0; i < 20000; ++i)
        pages.insert(z.nextAddr(rng) >> 12);
    // The 1 MB region has 256 pages; the hot mass should sit in far
    // fewer... but the Zipf tail still touches many. Compare against
    // the scattered variant instead.
    ZipfRegionAccess zs(r, 64, 1.2, 1, 1, /*scatter=*/true);
    std::set<Addr> pages_scattered;
    for (int i = 0; i < 20000; ++i)
        pages_scattered.insert(zs.nextAddr(rng) >> 12);
    // Identity layout: the same number of record draws covers fewer
    // distinct *hot* pages. Measure via a small sample prefix.
    EXPECT_LE(pages.size(), pages_scattered.size());
}

TEST(ZipfRegionAccess, SpatialRuns)
{
    Region r{0, 64_KiB};
    ZipfRegionAccess z(r, 64, 0.0, 8, 13);
    Random rng(8);
    // Consecutive addresses inside a run advance by 4 bytes.
    unsigned sequential = 0;
    Addr prev = z.nextAddr(rng);
    for (int i = 0; i < 10000; ++i) {
        Addr cur = z.nextAddr(rng);
        if (cur == prev + 4)
            ++sequential;
        prev = cur;
    }
    EXPECT_GT(sequential, 4000u);
}

TEST(CodeModel, PcsStayInsideLayout)
{
    CodeModel cm(0x00400000, 16, 50, 200, 0.8, 0.5, 21);
    Random rng(9);
    for (int i = 0; i < 100000; ++i) {
        Addr pc = cm.nextPc(rng);
        ASSERT_GE(pc, 0x00400000u);
        ASSERT_LT(pc, 0x00400000u + cm.codeBytes());
        ASSERT_EQ(pc % 4, 0u);
    }
}

TEST(CodeModel, MostlySequentialFetch)
{
    CodeModel cm(0x00400000, 8, 100, 400, 0.5, 0.3, 22);
    Random rng(10);
    Addr prev = cm.nextPc(rng);
    unsigned seq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        Addr cur = cm.nextPc(rng);
        if (cur == prev + 4)
            ++seq;
        prev = cur;
    }
    // Straight-line execution dominates, as in real code.
    EXPECT_GT(seq, n * 0.8);
}

TEST(CodeModel, InvalidConfigs)
{
    setQuiet(true);
    EXPECT_THROW(CodeModel(0, 0, 10, 20, 1, 0.5, 1), FatalError);
    EXPECT_THROW(CodeModel(0, 4, 0, 20, 1, 0.5, 1), FatalError);
    EXPECT_THROW(CodeModel(0, 4, 30, 20, 1, 0.5, 1), FatalError);
    setQuiet(false);
}

// -------------------------------------------------------------- workloads

class WorkloadTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadTest, DeterministicFromSeed)
{
    auto a = makeWorkload(GetParam(), 42);
    auto b = makeWorkload(GetParam(), 42);
    TraceRecord ra, rb;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_EQ(ra, rb) << "diverged at instruction " << i;
    }
}

TEST_P(WorkloadTest, DifferentSeedsDiverge)
{
    auto a = makeWorkload(GetParam(), 1);
    auto b = makeWorkload(GetParam(), 2);
    TraceRecord ra, rb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a->next(ra);
        b->next(rb);
        if (ra == rb)
            ++same;
    }
    EXPECT_LT(same, 1000);
}

TEST_P(WorkloadTest, AddressesInUserSpace)
{
    auto w = makeWorkload(GetParam(), 7);
    TraceRecord r;
    for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(w->next(r));
        ASSERT_LT(r.pc, kUserSpan);
        if (r.isMemOp()) {
            ASSERT_LT(r.daddr, kUserSpan);
        }
    }
}

TEST_P(WorkloadTest, MemOpRateReasonable)
{
    auto w = makeWorkload(GetParam(), 7);
    TraceRecord r;
    int mem = 0, stores = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        w->next(r);
        if (r.isMemOp()) {
            ++mem;
            if (r.isStore())
                ++stores;
        }
    }
    // SPEC-integer-like rates: 25-45% of instructions touch memory,
    // and stores are a minority of memory operations.
    EXPECT_GT(mem, n / 5);
    EXPECT_LT(mem, n / 2);
    EXPECT_GT(stores, 0);
    EXPECT_LT(stores, mem / 2 + mem / 4);
}

TEST_P(WorkloadTest, FootprintFitsPaperPhysicalMemory)
{
    // The paper sizes PA-RISC physical memory at 8 MB and asserts it
    // exceeds every benchmark's needs; our stand-ins must comply.
    auto w = makeWorkload(GetParam(), 7);
    TraceRecord r;
    std::set<std::uint32_t> pages;
    for (int i = 0; i < 400000; ++i) {
        w->next(r);
        pages.insert(r.pc >> 12);
        if (r.isMemOp())
            pages.insert(r.daddr >> 12);
    }
    EXPECT_LT(pages.size(), 1800u) << "workload exceeds 8MB of pages";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::Values("gcc", "vortex", "ijpeg"));

TEST(Workloads, FactoryNamesAndAliases)
{
    EXPECT_EQ(makeWorkload("gcc")->name(), "gcc-like");
    EXPECT_EQ(makeWorkload("gcc-like")->name(), "gcc-like");
    EXPECT_EQ(makeWorkload("vortex")->name(), "vortex-like");
    EXPECT_EQ(makeWorkload("ijpeg")->name(), "ijpeg-like");
    EXPECT_EQ(workloadNames().size(), 3u);
    setQuiet(true);
    EXPECT_THROW(makeWorkload("perl"), FatalError);
    setQuiet(false);
}

/** Count distinct data pages touched in a window. */
std::size_t
dataPageWorkingSet(const char *name, int n)
{
    auto w = makeWorkload(name, 99);
    TraceRecord r;
    std::set<std::uint32_t> pages;
    for (int i = 0; i < n; ++i) {
        w->next(r);
        if (r.isMemOp())
            pages.insert(r.daddr >> 12);
    }
    return pages.size();
}

TEST(Workloads, RelativeDataWorkingSets)
{
    // The ordering the paper's results depend on: ijpeg has the
    // smallest page working set, vortex the largest.
    std::size_t gcc = dataPageWorkingSet("gcc", 200000);
    std::size_t vortex = dataPageWorkingSet("vortex", 200000);
    std::size_t ijpeg = dataPageWorkingSet("ijpeg", 200000);
    EXPECT_LT(ijpeg, gcc);
    EXPECT_LT(gcc, vortex);
}

TEST(Workloads, IjpegHasSmallCodeFootprint)
{
    auto count_code_pages = [](const char *name) {
        auto w = makeWorkload(name, 3);
        TraceRecord r;
        std::set<std::uint32_t> pages;
        for (int i = 0; i < 100000; ++i) {
            w->next(r);
            pages.insert(r.pc >> 12);
        }
        return pages.size();
    };
    EXPECT_LT(count_code_pages("ijpeg"), count_code_pages("gcc"));
}

TEST(Workloads, UnboundedSource)
{
    // Synthetic sources never run dry.
    auto w = makeWorkload("gcc", 1);
    TraceRecord r;
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(w->next(r));
}

} // anonymous namespace
} // namespace vmsim
