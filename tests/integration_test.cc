/**
 * @file
 * Integration tests: whole simulations through the System/Simulator
 * stack, checking cross-module invariants and the qualitative findings
 * the paper reports.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "trace/synthetic/workloads.hh"
#include "trace/trace_file.hh"

namespace vmsim
{
namespace
{

SimConfig
baseConfig(SystemKind kind)
{
    SimConfig cfg;
    cfg.kind = kind;
    cfg.l1 = CacheParams{32_KiB, 32};
    cfg.l2 = CacheParams{1_MiB, 64};
    cfg.seed = 777;
    return cfg;
}

constexpr Counter kRun = 150000;
constexpr Counter kWarm = 50000;

Results
quickRun(SystemKind kind, const char *workload = "gcc")
{
    return runOnce(baseConfig(kind), workload, kRun, kWarm);
}

TEST(Integration, AllSystemsRunAllWorkloads)
{
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Mach, SystemKind::Intel,
          SystemKind::Parisc, SystemKind::Notlb, SystemKind::Base,
          SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur}) {
        for (const auto &w : workloadNames()) {
            Results r = runOnce(baseConfig(kind), w, 20000, 5000);
            EXPECT_EQ(r.userInstrs(), 20000u);
            EXPECT_GE(r.totalCpi(), 1.0);
        }
    }
}

TEST(Integration, BaseHasZeroVmOverhead)
{
    Results r = quickRun(SystemKind::Base);
    EXPECT_EQ(r.vmcpi(), 0.0);
    EXPECT_EQ(r.interruptCpi(), 0.0);
    EXPECT_GT(r.mcpi(), 0.0);
}

TEST(Integration, IntelTakesNoInterrupts)
{
    Results r = quickRun(SystemKind::Intel);
    EXPECT_EQ(r.vmStats().interrupts, 0u);
    EXPECT_EQ(r.interruptCpi(), 0.0);
    EXPECT_GT(r.vmcpi(), 0.0);
    // And never touches the I-cache with handler code (Table 3 note:
    // handler-L2 / handler-MEM events cannot happen).
    VmcpiBreakdown v = r.vmcpiBreakdown();
    EXPECT_EQ(v.handlerL2, 0.0);
    EXPECT_EQ(v.handlerMem, 0.0);
    EXPECT_EQ(v.khandler, 0.0);
}

TEST(Integration, UltrixHasNoKernelHandler)
{
    // Table 3 note: ULTRIX has no kernel-level miss handler.
    Results r = quickRun(SystemKind::Ultrix);
    VmcpiBreakdown v = r.vmcpiBreakdown();
    EXPECT_EQ(v.khandler, 0.0);
    EXPECT_EQ(v.kpteL2, 0.0);
    EXPECT_EQ(v.kpteMem, 0.0);
    EXPECT_GT(v.uhandler, 0.0);
}

TEST(Integration, MachUsesAllThreeLevels)
{
    // Kernel/root-level misses are a cold-start phenomenon: once the
    // handful of UPT/KPT page mappings sit in the protected slots they
    // never miss again. Measure from cold (no warmup).
    Results r = runOnce(baseConfig(SystemKind::Mach), "vortex", kRun, 0);
    const VmStats &s = r.vmStats();
    EXPECT_GT(s.uhandlerCalls, 0u);
    EXPECT_GT(s.khandlerCalls, 0u);
    EXPECT_GT(s.rhandlerCalls, 0u);
    EXPECT_GE(s.interrupts, s.uhandlerCalls + s.khandlerCalls);
}

TEST(Integration, PariscHasOnlyUserLevelEvents)
{
    Results r = quickRun(SystemKind::Parisc, "vortex");
    VmcpiBreakdown v = r.vmcpiBreakdown();
    EXPECT_EQ(v.khandler, 0.0);
    EXPECT_EQ(v.rhandler, 0.0);
    EXPECT_EQ(v.rpteL2, 0.0);
    EXPECT_EQ(v.rpteMem, 0.0);
    EXPECT_GT(v.uhandler, 0.0);
}

TEST(Integration, SoftwareSchemesInterruptOncePerHandler)
{
    for (SystemKind kind : {SystemKind::Ultrix, SystemKind::Mach,
                            SystemKind::Parisc, SystemKind::Notlb}) {
        Results r = quickRun(kind, "gcc");
        const VmStats &s = r.vmStats();
        EXPECT_EQ(s.interrupts, s.uhandlerCalls + s.khandlerCalls +
                                    s.rhandlerCalls)
            << kindName(kind);
    }
}

TEST(Integration, HardwareSchemesNeverInterrupt)
{
    for (SystemKind kind : {SystemKind::Intel, SystemKind::HwInverted,
                            SystemKind::HwMips, SystemKind::Spur}) {
        Results r = quickRun(kind, "gcc");
        EXPECT_EQ(r.vmStats().interrupts, 0u) << kindName(kind);
        EXPECT_GT(r.vmStats().hwWalks, 0u) << kindName(kind);
    }
}

TEST(Integration, PollutionMakesVmMcpiExceedBase)
{
    // The paper's headline: including VM-inflicted cache misses, the
    // total overhead roughly doubles. At minimum, a VM system's MCPI
    // must be >= BASE's on the same trace (same seed).
    Results base = quickRun(SystemKind::Base, "gcc");
    for (SystemKind kind : {SystemKind::Ultrix, SystemKind::Mach,
                            SystemKind::Parisc}) {
        Results r = quickRun(kind, "gcc");
        EXPECT_GE(r.mcpi(), base.mcpi() * 0.98) << kindName(kind);
    }
}

TEST(Integration, VortexIsWorstIjpegIsBest)
{
    // The paper picks gcc/vortex as worst VM performers and ijpeg as
    // the counterexample.
    Results gcc = quickRun(SystemKind::Ultrix, "gcc");
    Results vortex = quickRun(SystemKind::Ultrix, "vortex");
    Results ijpeg = quickRun(SystemKind::Ultrix, "ijpeg");
    EXPECT_GT(vortex.vmcpi(), gcc.vmcpi());
    EXPECT_GT(gcc.vmcpi(), ijpeg.vmcpi());
}

TEST(Integration, DeterministicAcrossRuns)
{
    Results a = quickRun(SystemKind::Mach, "vortex");
    Results b = quickRun(SystemKind::Mach, "vortex");
    EXPECT_DOUBLE_EQ(a.mcpi(), b.mcpi());
    EXPECT_DOUBLE_EQ(a.vmcpi(), b.vmcpi());
    EXPECT_EQ(a.vmStats().interrupts, b.vmStats().interrupts);
}

TEST(Integration, WarmupReducesMeasuredMcpi)
{
    SimConfig cfg = baseConfig(SystemKind::Base);
    Results cold = runOnce(cfg, "gcc", kRun, 0);
    Results warm = runOnce(cfg, "gcc", kRun, kWarm);
    EXPECT_LT(warm.mcpi(), cold.mcpi());
}

TEST(Integration, SimulatorStopsAtTraceEnd)
{
    // A finite file trace ends the run early.
    char tmpl[] = "/tmp/vmsim_integ_XXXXXX";
    int fd = mkstemp(tmpl);
    ASSERT_GE(fd, 0);
    ::close(fd);
    {
        TraceFileWriter w(tmpl);
        for (int i = 0; i < 100; ++i)
            w.write(TraceRecord{static_cast<std::uint32_t>(0x400000 +
                                                           4 * i),
                                0, MemOp::None});
        w.close();
    }
    TraceFileReader trace(tmpl);
    System system(baseConfig(SystemKind::Ultrix));
    Results r = system.run(trace, 1000000, "file");
    EXPECT_EQ(r.userInstrs(), 100u);
    std::remove(tmpl);
}

TEST(Integration, FileTraceMatchesSyntheticSource)
{
    // Recording a synthetic trace to disk and replaying it must give
    // identical results to driving the generator directly.
    char tmpl[] = "/tmp/vmsim_integ2_XXXXXX";
    int fd = mkstemp(tmpl);
    ASSERT_GE(fd, 0);
    ::close(fd);
    const Counter n = 30000;
    {
        GccLikeWorkload w(5);
        TraceFileWriter out(tmpl);
        TraceRecord rec;
        for (Counter i = 0; i < n; ++i) {
            w.next(rec);
            out.write(rec);
        }
        out.close();
    }
    SimConfig cfg = baseConfig(SystemKind::Parisc);
    cfg.seed = 5;

    GccLikeWorkload direct(5);
    System sys_a(cfg);
    Results ra = sys_a.run(direct, n, "direct");

    TraceFileReader replay(tmpl);
    System sys_b(cfg);
    Results rb = sys_b.run(replay, n, "replay");

    EXPECT_DOUBLE_EQ(ra.mcpi(), rb.mcpi());
    EXPECT_DOUBLE_EQ(ra.vmcpi(), rb.vmcpi());
    std::remove(tmpl);
}

TEST(Integration, SweepHelpersProduceValidGrids)
{
    EXPECT_EQ(paperL1Sizes(true).size(), 8u);
    EXPECT_EQ(paperL2Sizes(true).size(), 3u);
    EXPECT_EQ(paperLineSizes(true).size(), 10u);
    EXPECT_EQ(paperInterruptCosts().size(), 3u);
    for (auto [l1, l2] : paperLineSizes(true))
        EXPECT_LE(l1, l2);
    // Reduced grids are subsets.
    EXPECT_LT(paperL1Sizes(false).size(), paperL1Sizes(true).size());
}

TEST(Integration, ConfigValidation)
{
    setQuiet(true);
    SimConfig cfg = baseConfig(SystemKind::Ultrix);
    cfg.l2.sizeBytes = 16_KiB; // smaller than L1
    EXPECT_THROW(System{cfg}, FatalError);
    cfg = baseConfig(SystemKind::Ultrix);
    cfg.l1.lineSize = 128;
    cfg.l2.lineSize = 64;
    EXPECT_THROW(System{cfg}, FatalError);
    setQuiet(false);
}

TEST(Integration, KindNamesRoundTrip)
{
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Mach, SystemKind::Intel,
          SystemKind::Parisc, SystemKind::Notlb, SystemKind::Base,
          SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur}) {
        EXPECT_EQ(kindFromName(kindName(kind)), kind);
    }
    EXPECT_EQ(kindFromName("parisc"), SystemKind::Parisc);
    EXPECT_EQ(kindFromName("ultrix"), SystemKind::Ultrix);
    setQuiet(true);
    EXPECT_THROW(kindFromName("VAX"), FatalError);
    setQuiet(false);
}

TEST(Integration, BenchOptionParsing)
{
    const char *argv[] = {"prog", "--full", "--csv",
                          "--instructions=5000", "--seed=9"};
    BenchOptions opts =
        BenchOptions::parse(5, const_cast<char **>(argv));
    EXPECT_TRUE(opts.full);
    EXPECT_TRUE(opts.csv);
    EXPECT_EQ(opts.instructions, 5000u);
    EXPECT_EQ(opts.seed, 9u);

    setQuiet(true);
    const char *bad[] = {"prog", "--bogus"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(bad)),
                 FatalError);
    setQuiet(false);
}

} // anonymous namespace
} // namespace vmsim
