/**
 * @file
 * Tests for the interpolated organizations of paper Section 4.2 —
 * HW-INVERTED (PowerPC/PA-7200-style), HW-MIPS, and SPUR — plus BASE.
 * The defining property of each: which costs it *avoids* relative to
 * the software-managed systems.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/base_vm.hh"
#include "os/hw_inverted_vm.hh"
#include "os/hw_mips_vm.hh"
#include "os/spur_vm.hh"

namespace vmsim
{
namespace
{

CacheParams l1() { return CacheParams{32_KiB, 32}; }
CacheParams l2() { return CacheParams{1_MiB, 64}; }

// ------------------------------------------------------------------ BASE

TEST(BaseVm, NoVmEventsEver)
{
    MemSystem mem(l1(), l2());
    BaseVm vm(mem);
    for (int i = 0; i < 1000; ++i) {
        vm.instRef(Access{0x00400000 + i * 4});
        vm.dataRef(Access{0x10000000 + i * 64, 0, i % 3 == 0});
    }
    const VmStats &s = vm.vmStats();
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_EQ(s.uhandlerCalls, 0u);
    EXPECT_EQ(s.hwWalks, 0u);
    EXPECT_EQ(s.pteLoads, 0u);
    EXPECT_EQ(vm.itlb(), nullptr);
    EXPECT_EQ(vm.dtlb(), nullptr);
    // Only user-class traffic exists.
    EXPECT_EQ(mem.stats().dataOf(AccessClass::PteUser).accesses, 0u);
    EXPECT_EQ(mem.stats().instOf(AccessClass::HandlerFetch).accesses, 0u);
    EXPECT_EQ(vm.name(), "BASE");
}

TEST(BaseVm, CachesStillWork)
{
    MemSystem mem(l1(), l2());
    BaseVm vm(mem);
    vm.dataRef(Access{0x10000000, 0, false});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(mem.stats().dataOf(AccessClass::User).accesses, 2u);
    EXPECT_EQ(mem.stats().dataOf(AccessClass::User).l1Misses, 1u);
}

// ----------------------------------------------------------- HW-INVERTED

TEST(HwInvertedVm, WalksWithoutInterruptOrICache)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwInvertedVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = vm.vmStats();
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_EQ(s.uhandlerInstrs, 0u);
    EXPECT_EQ(s.hwWalks, 1u);
    EXPECT_EQ(s.hwWalkCycles, 7u); // depth-1 chain: base cost only
    EXPECT_GE(s.pteLoads, 1u);
    EXPECT_EQ(mem.stats().instOf(AccessClass::HandlerFetch).accesses, 0u);
    EXPECT_EQ(vm.name(), "HW-INVERTED");
}

TEST(HwInvertedVm, ChainDepthAddsCycles)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwInvertedVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    const HashedPageTable &pt = vm.pageTable();
    Vpn a = 0x10000000 >> 12;
    Vpn b = 0;
    for (Vpn v = a + 1; v < (kUserSpan >> 12); ++v) {
        if (pt.hashOf(v) == pt.hashOf(a)) {
            b = v;
            break;
        }
    }
    ASSERT_NE(b, 0u);
    vm.dataRef(Access{a << 12, 0, false});
    EXPECT_EQ(vm.vmStats().hwWalkCycles, 7u);
    vm.dataRef(Access{b << 12, 0, false});
    // Second walk visits 2 chain entries: 7 + (7 + 1).
    EXPECT_EQ(vm.vmStats().hwWalkCycles, 15u);
}

TEST(HwInvertedVm, SharesTableBehaviorWithParisc)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwInvertedVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0},
                    HandlerCosts{}, 12, 1, 2);
    EXPECT_EQ(vm.pageTable().numBuckets(), 4096u);
    vm.dataRef(Access{0x10000000, 0, false});
    // 16-byte PTE traffic on the D side.
    EXPECT_EQ(mem.stats().dataOf(AccessClass::PteUser).accesses, 1u);
}

// --------------------------------------------------------------- HW-MIPS

TEST(HwMipsVm, UnpartitionedTlbAblationWorks)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwMipsVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().hwWalks, 1u);
    Vpn upte_page = vm.pageTable().uptPageVpn(0x10000000 >> 12);
    EXPECT_TRUE(vm.dtlb()->contains(upte_page));
}

TEST(HwMipsVm, ColdWalkUsesNestedRootPath)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwMipsVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = vm.vmStats();
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_EQ(s.hwWalks, 1u);
    EXPECT_EQ(s.hwWalkCycles, 7u + HwMipsVm::kNestedWalkCycles);
    EXPECT_EQ(s.pteLoads, 2u);
    EXPECT_EQ(mem.stats().instOf(AccessClass::HandlerFetch).accesses, 0u);
    EXPECT_EQ(vm.name(), "HW-MIPS");
}

TEST(HwMipsVm, WarmUptPageSkipsNesting)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwMipsVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.dataRef(Access{0x10000000, 0, false});
    vm.dataRef(Access{0x10001000, 0, false}); // same UPT page: no root access
    const VmStats &s = vm.vmStats();
    EXPECT_EQ(s.hwWalks, 2u);
    EXPECT_EQ(s.hwWalkCycles, 2 * 7u + HwMipsVm::kNestedWalkCycles);
    EXPECT_EQ(mem.stats().dataOf(AccessClass::PteRoot).accesses, 1u);
}

TEST(HwMipsVm, SameMemoryTrafficAsUltrixWalk)
{
    // The interpolation preserves ULTRIX's table references: virtual
    // UPTE (user class) + physical RPTE (root class).
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    HwMipsVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(mem.stats().dataOf(AccessClass::PteUser).accesses, 1u);
    EXPECT_EQ(mem.stats().dataOf(AccessClass::PteRoot).accesses, 1u);
}

// ------------------------------------------------------------------ SPUR

TEST(SpurVm, NoTlbNoInterruptNoHandlerCode)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    SpurVm vm(mem, pm);
    EXPECT_EQ(vm.itlb(), nullptr);
    vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = vm.vmStats();
    EXPECT_EQ(s.interrupts, 0u);
    EXPECT_EQ(s.uhandlerInstrs, 0u);
    EXPECT_EQ(s.hwWalks, 1u);
    // Cold: the PTE itself missed L2, so the nested root path ran.
    EXPECT_EQ(s.hwWalkCycles, 7u + SpurVm::kNestedWalkCycles);
    EXPECT_EQ(s.pteLoads, 2u);
    EXPECT_EQ(mem.stats().instOf(AccessClass::HandlerFetch).accesses, 0u);
    EXPECT_EQ(vm.name(), "SPUR");
}

TEST(SpurVm, TriggersOnlyOnL2Miss)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    SpurVm vm(mem, pm);
    vm.dataRef(Access{0x10000000, 0, false});
    Counter walks = vm.vmStats().hwWalks;
    vm.dataRef(Access{0x10000000, 0, false}); // L1 hit
    EXPECT_EQ(vm.vmStats().hwWalks, walks);
    // L1 conflict but L2 hit: still no walk.
    vm.dataRef(Access{0x10008000, 0, false});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().hwWalks, walks + 1); // only the new line
}

TEST(SpurVm, WarmPteSkipsNestedCycles)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    SpurVm vm(mem, pm);
    vm.dataRef(Access{0x10000000, 0, false});
    Counter cycles = vm.vmStats().hwWalkCycles;
    // Neighboring page's PTE shares the warm table line: walk is flat.
    vm.dataRef(Access{0x10001000, 0, false});
    EXPECT_EQ(vm.vmStats().hwWalkCycles, cycles + 7);
}

} // anonymous namespace
} // namespace vmsim
