/**
 * @file
 * Tests for crash-tolerant sharded sweeps: the CRC line framing and
 * CrashPlan primitives, lease-based claiming, stale-lease reclaim
 * between two live workers, SIGKILL round-trips through real forked
 * processes, torn-tail resume, and the headline guarantee — the
 * merged CSV is byte-identical to a single-process run no matter how
 * workers crashed.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/crc.hh"
#include "base/fsio.hh"
#include "base/subprocess.hh"
#include "base/units.hh"
#include "core/shard.hh"
#include "core/sweep.hh"
#include "fault/fault.hh"

namespace vmsim
{
namespace
{

namespace fs = std::filesystem;

/** Temp shard directory that cleans up after itself. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/vmsim_shard_XXXXXX";
        path_ = ::mkdtemp(tmpl);
    }

    ~TempDir() { fs::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A grid small enough that a full run is milliseconds. */
SweepSpec
tinySpec()
{
    SimConfig base;
    base.l1 = CacheParams{16_KiB, 32};
    base.l2 = CacheParams{256_KiB, 64};
    SweepSpec spec;
    spec.base(base).instructions(10'000).seeds(3);
    return spec;
}

std::string
csvOf(const SweepResults &res)
{
    std::ostringstream os;
    res.writeCsv(os);
    return os.str();
}

std::string
baselineCsv(const SweepSpec &spec)
{
    return csvOf(SweepRunner(1).run(spec));
}

/** A CellRunner over long-lived default policies (CellRunner keeps
 *  references to its spec/obs/faults arguments). */
class DirectRunner
{
  public:
    explicit DirectRunner(const SweepSpec &spec)
        : runner_(spec, obs_, RetryPolicy{}, faults_, 0, false, false,
                  nullptr)
    {
    }

    Results cell(std::size_t i) { return runner_.run(i).results; }

  private:
    ObsOptions obs_;
    FaultSpec faults_;
    CellRunner runner_;
};

ShardOptions
options(const TempDir &dir, const std::string &owner,
        double leaseSeconds = 30.0)
{
    ShardOptions opts;
    opts.dir = dir.path();
    opts.owner = owner;
    opts.leaseSeconds = leaseSeconds;
    opts.traceCacheMb = 16;
    opts.graceful = false;
    return opts;
}

// ---------------------------------------------------------------- CRC

TEST(CrcFrame, RoundTripsPayload)
{
    const std::string payload = "{\"cell\":7}";
    std::string framed = crcFrameLine(payload);
    std::string out;
    EXPECT_EQ(crcUnframeLine(framed, out), FrameCheck::Ok);
    EXPECT_EQ(out, payload);
}

TEST(CrcFrame, DetectsCorruption)
{
    std::string framed = crcFrameLine("{\"cell\":7}");
    framed[framed.size() - 2] ^= 1; // flip a payload bit
    std::string out;
    EXPECT_EQ(crcUnframeLine(framed, out), FrameCheck::Mismatch);
}

TEST(CrcFrame, PassesLegacyLinesThrough)
{
    std::string out;
    EXPECT_EQ(crcUnframeLine("{\"cell\":7}", out), FrameCheck::Legacy);
    EXPECT_EQ(out, "{\"cell\":7}");
}

TEST(CrcFrame, RejectsMalformedFrames)
{
    std::string out;
    EXPECT_EQ(crcUnframeLine("{\"crc\":\"zzzz\",\"data\":1}", out),
              FrameCheck::Malformed);
}

// ---------------------------------------------------------- CrashPlan

TEST(CrashPlan, ParsesTheGrammar)
{
    CrashPlan plan = CrashPlan::parse("after=3").orThrow();
    EXPECT_EQ(plan.afterAppends, 3);
    EXPECT_FALSE(plan.tornTail);
    EXPECT_FALSE(plan.throwInstead);
    EXPECT_TRUE(plan.armed());

    plan = CrashPlan::parse("after=0,torn=1").orThrow();
    EXPECT_EQ(plan.afterAppends, 0);
    EXPECT_TRUE(plan.tornTail);

    plan = CrashPlan::parse("after=2,throw=1").orThrow();
    EXPECT_TRUE(plan.throwInstead);
    EXPECT_EQ(CrashPlan::parse(plan.toString()).orThrow().toString(),
              plan.toString());

    EXPECT_FALSE(CrashPlan{}.armed());
    EXPECT_FALSE(CrashPlan::parse("bogus=1").ok());
}

// ------------------------------------------------------------- shards

TEST(Shard, SingleWorkerMatchesSingleProcess)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    std::size_t committed =
        runShardWorker(spec, options(dir, "solo"));
    EXPECT_EQ(committed, spec.numCells());

    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.missing, 0u);
    EXPECT_EQ(csvOf(merged.results), baselineCsv(spec));
}

TEST(Shard, DuplicateCommitsMergeFirstWins)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    // Worker "a" executes the full grid, then "b" re-commits every
    // cell into its own log — the worst-case claiming race, where
    // every cell ends up committed twice.
    runShardWorker(spec, options(dir, "a"));
    {
        ShardLog log(dir.path(), "b", spec);
        DirectRunner runner(spec);
        for (std::size_t i = 0; i < spec.numCells(); ++i)
            log.commit(i, runner.cell(i));
    }
    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.missing, 0u);
    EXPECT_EQ(csvOf(merged.results), baselineCsv(spec));
}

TEST(Shard, MergeMarksNeverExecutedCells)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    {
        ShardLog log(dir.path(), "partial", spec);
        log.commit(0, DirectRunner(spec).cell(0));
    }
    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.completed, 1u);
    EXPECT_EQ(merged.missing, spec.numCells() - 1);
    EXPECT_FALSE(merged.results.outcomeAt(1).ok);
    EXPECT_EQ(merged.results.outcomeAt(1).error.code,
              ErrorCode::Unknown);
}

TEST(Shard, StaleLeaseIsReclaimed)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    {
        // A worker that died long ago: its lease on cell 0 is already
        // expired (absolute expiry in the distant past).
        ShardLog dead(dir.path(), "dead", spec);
        dead.lease(0, 1);
    }
    std::size_t committed =
        runShardWorker(spec, options(dir, "live"));
    EXPECT_EQ(committed, spec.numCells());
    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.missing, 0u);
    EXPECT_EQ(csvOf(merged.results), baselineCsv(spec));
}

TEST(Shard, TwoLiveWorkersOneCrashesMidSweep)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    // Worker A SIGKILLs itself on its first commit append (header,
    // lease, then boom) while holding the lease on its claimed cell;
    // worker B, running concurrently with a short reclaim horizon,
    // waits the lease out and finishes the grid.
    ShardOptions aOpts = options(dir, "a", 0.3);
    aOpts.crash = CrashPlan::parse("after=2,torn=1").orThrow();
    ShardOptions bOpts = options(dir, "b", 0.3);
    pid_t a = spawnFunction([&] {
                  runShardWorker(spec, aOpts);
                  return 0;
              }).orThrow();
    pid_t b = spawnFunction([&] {
                  runShardWorker(spec, bOpts);
                  return 0;
              }).orThrow();
    ExitStatus aStatus = waitProcess(a).orThrow();
    ExitStatus bStatus = waitProcess(b).orThrow();
    EXPECT_TRUE(aStatus.signaled);
    EXPECT_EQ(aStatus.signal, SIGKILL);
    EXPECT_TRUE(bStatus.exited);
    EXPECT_EQ(bStatus.exitCode, 0);

    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.missing, 0u);
    EXPECT_EQ(csvOf(merged.results), baselineCsv(spec));
}

TEST(Shard, SigkillRoundTripThroughSameOwner)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    // Kill a real process mid-append with a torn tail, then restart
    // under the *same* identity: the resume path must truncate the
    // torn record and carry on to a byte-identical merge.
    ShardOptions crashOpts = options(dir, "w0", 0.2);
    crashOpts.crash = CrashPlan::parse("after=3,torn=1").orThrow();
    pid_t pid = spawnFunction([&] {
                    runShardWorker(spec, crashOpts);
                    return 0;
                }).orThrow();
    ExitStatus st = waitProcess(pid).orThrow();
    ASSERT_TRUE(st.signaled);
    ASSERT_EQ(st.signal, SIGKILL);

    // The torn tail is skippable (scan) before it is truncated (own
    // resume): integrity holds at every point in between.
    EXPECT_TRUE(scanShardDir(dir.path(), spec).ok());

    runShardWorker(spec, options(dir, "w0", 0.2));
    ShardMerge merged = mergeShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(merged.missing, 0u);
    EXPECT_EQ(csvOf(merged.results), baselineCsv(spec));
}

TEST(Shard, TornTailResumeRegression)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    {
        ShardLog log(dir.path(), "w0", spec);
        log.commit(0, DirectRunner(spec).cell(0));
    }
    const std::string path = dir.path() + "/shard-w0.jsonl";
    const auto before = fs::file_size(path);
    {
        // Simulate a kill mid-append: half of a record, no newline.
        AppendLog raw;
        ASSERT_TRUE(raw.open(path, false).ok());
        std::string line = crcFrameLine("{\"lease\":1,"
                                        "\"expires_ms\":999999}");
        ASSERT_TRUE(raw.appendTorn(line, line.size() / 2).ok());
    }
    ASSERT_GT(fs::file_size(path), before);

    // Scanners skip the tail without touching the file.
    const auto torn = fs::file_size(path);
    ShardScan scan = scanShardDir(dir.path(), spec).orThrow();
    EXPECT_EQ(scan.done, 1u);
    EXPECT_EQ(fs::file_size(path), torn);

    // The owner's reopen truncates it and the sweep completes.
    runShardWorker(spec, options(dir, "w0"));
    EXPECT_EQ(csvOf(mergeShardDir(dir.path(), spec).orThrow().results),
              baselineCsv(spec));
}

TEST(Shard, MidFileCorruptionIsAnIntegrityError)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    runShardWorker(spec, options(dir, "w0"));
    const std::string path = dir.path() + "/shard-w0.jsonl";
    // Flip a byte in the middle of the file: a torn *tail* is benign,
    // interior damage never is.
    std::string text;
    {
        std::ifstream is(path, std::ios::binary);
        text.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
    }
    text[text.size() / 2] ^= 1;
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    }
    Expected<ShardScan> scan = scanShardDir(dir.path(), spec);
    ASSERT_FALSE(scan.ok());
    EXPECT_EQ(scan.error().code, ErrorCode::ParseError);
}

TEST(Shard, RefusesAForeignSpecFingerprint)
{
    const SweepSpec spec = tinySpec();
    TempDir dir;
    runShardWorker(spec, options(dir, "w0"));

    SweepSpec other = tinySpec();
    other.instructions(20'000); // different grid, different prints
    Expected<ShardScan> scan = scanShardDir(dir.path(), other);
    ASSERT_FALSE(scan.ok());
    EXPECT_EQ(scan.error().code, ErrorCode::InvalidArgument);
}

} // anonymous namespace
} // namespace vmsim
