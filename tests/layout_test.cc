/**
 * @file
 * Tests for the hot-path data layouts (DESIGN.md "Hot-path data
 * layout"): static size/alignment guarantees of the structures the
 * replay kernels stream over, the FlatMap64 open-addressed table's
 * collision/tombstone/incremental-rehash edge cases, the TLB's flat
 * key->slot index under ASID-tagged churn (including the dual-key
 * invalidate regression Tlb::invalidate documents), and scalar-vs-
 * batched equivalence for all nine organizations at cores=4 with
 * mid-batch context switches and shootdowns.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "base/aligned.hh"
#include "base/flat_hash.hh"
#include "base/random.hh"
#include "core/simulator.hh"
#include "obs/event.hh"
#include "obs/interval.hh"
#include "os/vm_system.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"

namespace vmsim
{
namespace
{

// --------------------------------------------- static layout contracts

// The batched kernels copy TraceRecords by the block and re-stage them
// as Access values; both must stay trivially copyable and packed so a
// batch is a flat memcpy-able array, not a pointer graph.
static_assert(std::is_trivially_copyable_v<TraceRecord>);
static_assert(sizeof(TraceRecord) == 12, "TraceRecord grew: the "
              "recorded-trace format and batch buffers stream this");
static_assert(std::is_trivially_copyable_v<Access>);
static_assert(sizeof(Access) == 16, "Access is re-staged per record in "
              "the kernels; keep it two words");
static_assert(std::is_trivially_copyable_v<AccessBlock>);
static_assert(sizeof(AccessBlock) <= 24);

// The SoA TLB arrays and FlatMap64 slot arrays are probed linearly;
// their element types must stay word-sized scalars.
static_assert(sizeof(Vpn) == 8);
static_assert(kCacheLineBytes == 64);
static_assert(std::is_trivially_copyable_v<TlbParams>);

TEST(Layout, AlignedVecStartsOnACacheLine)
{
    AlignedVec<std::uint64_t> keys(128);
    AlignedVec<std::uint8_t> valid(128);
    AlignedVec<std::uint64_t> stamps(128);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(keys.data()) %
                  kCacheLineBytes, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(valid.data()) %
                  kCacheLineBytes, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(stamps.data()) %
                  kCacheLineBytes, 0u);
    // Still a real vector: growth preserves the alignment contract.
    keys.push_back(1);
    keys.resize(4096);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(keys.data()) %
                  kCacheLineBytes, 0u);
}

// ------------------------------------------------- FlatMap64 edge cases

TEST(FlatMap64, ZeroIsAValidKey)
{
    FlatMap64<unsigned> m;
    m.insertNew(0, 42u);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 42u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.erase(0));
    EXPECT_EQ(m.find(0), nullptr);
    EXPECT_FALSE(m.erase(0));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap64, EraseTombstonesKeepProbeChainsIntact)
{
    // Fill a small table enough that probe chains overlap, then erase
    // every other key: lookups that probed *through* the erased slots
    // must still reach their keys (tombstone, not empty).
    FlatMap64<unsigned> m;
    constexpr std::uint64_t kN = 12; // under the cap-16 grow threshold
    for (std::uint64_t k = 0; k < kN; ++k)
        m.insertNew(k * 0x10001, static_cast<unsigned>(k));
    for (std::uint64_t k = 0; k < kN; k += 2)
        EXPECT_TRUE(m.erase(k * 0x10001));
    EXPECT_GT(m.tombstones(), 0u);
    for (std::uint64_t k = 1; k < kN; k += 2) {
        const unsigned *p = m.find(k * 0x10001);
        ASSERT_NE(p, nullptr) << "key " << k;
        EXPECT_EQ(*p, static_cast<unsigned>(k));
    }
    for (std::uint64_t k = 0; k < kN; k += 2)
        EXPECT_EQ(m.find(k * 0x10001), nullptr);
    EXPECT_EQ(m.size(), kN / 2);
}

TEST(FlatMap64, LookupsStayCorrectAcrossIncrementalRehash)
{
    // Grow through several incremental rehashes while checking every
    // previously inserted key after each insert — this exercises
    // lookups that must consult both the current and draining tables
    // mid-migration.
    FlatMap64<std::uint64_t> m;
    constexpr std::uint64_t kN = 600;
    for (std::uint64_t k = 0; k < kN; ++k) {
        m.insertNew(k, k * 3 + 1);
        // Spot-check a spread of earlier keys (all of them every step
        // is quadratic; a stride still crosses the drain boundary).
        for (std::uint64_t q = 0; q <= k; q += 7) {
            const std::uint64_t *p = m.find(q);
            ASSERT_NE(p, nullptr) << "key " << q << " after " << k;
            EXPECT_EQ(*p, q * 3 + 1);
        }
    }
    EXPECT_GE(m.rehashes(), 2u);
    EXPECT_EQ(m.size(), kN);
    std::uint64_t seen = 0;
    m.forEach([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_EQ(v, k * 3 + 1);
        ++seen;
    });
    EXPECT_EQ(seen, kN);
}

TEST(FlatMap64, TombstoneChurnTriggersPurgeNotUnboundedGrowth)
{
    // Insert/erase cycles at fresh keys drive `used` up through
    // tombstones alone; the table must purge (rehash at the same or
    // bounded capacity) instead of growing without bound or wedging.
    FlatMap64<unsigned> m;
    for (std::uint64_t k = 0; k < 4096; ++k) {
        m.insertNew(k, 1u);
        EXPECT_TRUE(m.erase(k));
    }
    EXPECT_EQ(m.size(), 0u);
    EXPECT_GE(m.rehashes(), 1u);
    EXPECT_LE(m.capacity(), 1024u);
    for (std::uint64_t k = 0; k < 4096; ++k)
        EXPECT_EQ(m.find(k), nullptr);
    // The table is still healthy for reuse after the churn.
    m.insertNew(99, 7u);
    ASSERT_NE(m.find(99), nullptr);
    EXPECT_EQ(*m.find(99), 7u);
}

TEST(FlatMap64, ClearDropsEntriesAndTombstones)
{
    FlatMap64<unsigned> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.insertNew(k, static_cast<unsigned>(k));
    for (std::uint64_t k = 0; k < 100; k += 3)
        m.erase(k);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.tombstones(), 0u);
    EXPECT_FALSE(m.rehashInFlight());
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(m.find(k), nullptr);
    m.insertNew(5, 55u);
    ASSERT_NE(m.find(5), nullptr);
}

// -------------------------------------------------- TLB flat-index audit

TlbParams
taggedFaParams()
{
    TlbParams p;
    p.entries = 32;
    p.protectedSlots = 8;
    p.asidBits = 4;
    return p;
}

/**
 * Regression for the dual-key invalidate interaction the comment in
 * Tlb::invalidate pins down: a VPN resident both as an ASID-tagged
 * normal entry and as a global protected entry must lose *both* on
 * invalidate(), and the flat index must stay consistent even though
 * the first erase tombstones a slot that may sit on the second key's
 * probe chain. Before the tombstone accounting fix, auditIndex()
 * caught a stale index entry here.
 */
TEST(TlbFlatIndex, InvalidateDropsAsidAndGlobalEntryTogether)
{
    Tlb tlb(taggedFaParams(), 42);
    tlb.setCurrentAsid(3);
    constexpr Vpn kVpn = 0x1234;
    tlb.insert(kVpn);                 // normal entry, key (3, vpn)
    tlb.insertProtected(kVpn);        // global entry, key (G, vpn)
    EXPECT_EQ(tlb.validEntries(), 2u);
    std::string why;
    ASSERT_TRUE(tlb.auditIndex(&why)) << why;

    tlb.invalidate(kVpn);
    EXPECT_FALSE(tlb.contains(kVpn));
    EXPECT_EQ(tlb.validEntries(), 0u);
    ASSERT_TRUE(tlb.auditIndex(&why)) << why;

    // The global entry alone must also hit (and be dropped) under a
    // different ASID.
    tlb.insertProtected(kVpn);
    tlb.setCurrentAsid(9);
    EXPECT_TRUE(tlb.contains(kVpn));
    tlb.invalidate(kVpn);
    EXPECT_FALSE(tlb.contains(kVpn));
    ASSERT_TRUE(tlb.auditIndex(&why)) << why;
}

TEST(TlbFlatIndex, ConsistentUnderTaggedChurn)
{
    // Deterministic churn over every mutation path — insert,
    // insertProtected, invalidate, invalidateAsid, evictRandom, ASID
    // switches, invalidateAll — auditing the index as we go. A small
    // TLB plus a small VPN universe forces evictions, refreshes and
    // tombstone reuse in the flat index.
    Tlb tlb(taggedFaParams(), 7);
    Random rng(1234);
    std::string why;
    for (unsigned op = 0; op < 4000; ++op) {
        Vpn v = rng.uniform(48);
        switch (rng.uniform(16)) {
          case 0:
            tlb.setCurrentAsid(static_cast<Asid>(rng.uniform(6)));
            break;
          case 1:
            tlb.insertProtected(v);
            break;
          case 2:
            tlb.invalidate(v);
            break;
          case 3:
            tlb.invalidateAsid(static_cast<Asid>(rng.uniform(6)));
            break;
          case 4:
            tlb.evictRandom(1 + static_cast<unsigned>(rng.uniform(4)));
            break;
          case 5:
            if (op % 1024 == 5)
                tlb.invalidateAll();
            break;
          default:
            if (!tlb.lookup(v))
                tlb.insert(v);
            break;
        }
        if (op % 64 == 0)
            ASSERT_TRUE(tlb.auditIndex(&why)) << "op " << op << ": "
                                              << why;
    }
    ASSERT_TRUE(tlb.auditIndex(&why)) << why;
    EXPECT_GT(tlb.hits(), 0u);
    EXPECT_GT(tlb.misses(), 0u);
}

TEST(TlbFlatIndex, UntaggedSmallTlbChurn)
{
    // The fuzz campaign draws tlbEntries in {32, 64}; mirror the
    // smallest here with the paper's untagged random-replacement
    // configuration to pressure fill/evict index turnover.
    TlbParams p;
    p.entries = 32;
    p.protectedSlots = 16;
    Tlb tlb(p, 99);
    Random rng(5678);
    std::string why;
    for (unsigned op = 0; op < 4000; ++op) {
        Vpn v = rng.uniform(200);
        if (!tlb.lookup(v))
            tlb.insert(v);
        if (rng.chance(0.05))
            tlb.invalidate(rng.uniform(200));
        if (op % 128 == 0)
            ASSERT_TRUE(tlb.auditIndex(&why)) << "op " << op << ": "
                                              << why;
    }
    ASSERT_TRUE(tlb.auditIndex(&why)) << why;
}

// ----------------------- scalar vs batched kernels, multicore + observed

SimConfig
layoutTestConfig(SystemKind kind)
{
    SimConfig cfg;
    cfg.kind = kind;
    cfg.l1 = CacheParams{16_KiB, 32};
    cfg.l2 = CacheParams{1_MiB, 64};
    cfg.seed = 4242;
    cfg.cores = 4;
    // Prime quantum so context switches (and the shootdowns they
    // broadcast) land mid-batch for any power-of-two batch size.
    cfg.ctxSwitchInterval = 997;
    cfg.coreQuantum = 613;
    return cfg;
}

/**
 * The devirtualized per-organization kernels (refBlockKernel /
 * TlbVm::refBlockT) must be observationally identical to the scalar
 * virtual-dispatch loop for every organization — at cores=4, with
 * context switches and shootdowns landing mid-batch, in both the
 * observed (kObs=true) and bare (kObs=false) instantiations.
 */
TEST(LayoutKernels, ScalarVsBatchedAllSystemsMulticore)
{
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Mach, SystemKind::Intel,
          SystemKind::Parisc, SystemKind::Notlb, SystemKind::Base,
          SystemKind::HwInverted, SystemKind::HwMips,
          SystemKind::Spur}) {
        std::string baseline;
        for (std::size_t batch : {std::size_t{1}, std::size_t{256}}) {
            RunHooks hooks;
            hooks.batch = batch;
            Results r = runOnce(layoutTestConfig(kind), "gcc", 12000,
                                2000, hooks);
            std::string dump = r.serialize().dump();
            if (baseline.empty())
                baseline = dump;
            else
                EXPECT_EQ(baseline, dump)
                    << kindName(kind) << " batch " << batch;
        }
    }
}

TEST(LayoutKernels, ObservedMatchesBareKernelCounters)
{
    // Attaching an event sink flips refBlock from the kObs=false to
    // the kObs=true kernel; the counter vector must not move.
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Parisc, SystemKind::Spur}) {
        RunHooks bare;
        bare.batch = 256;
        Results rb = runOnce(layoutTestConfig(kind), "gcc", 12000,
                             2000, bare);

        CollectingSink sink;
        IntervalSampler sampler(1000);
        RunHooks observed;
        observed.batch = 256;
        observed.sink = &sink;
        observed.sampler = &sampler;
        Results ro = runOnce(layoutTestConfig(kind), "gcc", 12000,
                             2000, observed);

        EXPECT_EQ(rb.serialize().dump(), ro.serialize().dump())
            << kindName(kind);
    }
}

} // anonymous namespace
} // namespace vmsim
