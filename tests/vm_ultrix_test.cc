/**
 * @file
 * Tests for UltrixVm: exact event accounting of the two-level
 * software-managed refill (paper Table 4: 10-instruction user handler
 * + 1 PTE load; 20-instruction root handler + 1 PTE load), nested
 * interrupt behavior, protected-slot usage, and TLB-hit fast paths.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/ultrix_vm.hh"

namespace vmsim
{
namespace
{

struct Fixture
{
    Fixture()
        : mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64}),
          pm(8_MiB, 12),
          vm(mem, pm, TlbParams{128, 16, TlbRepl::Random},
             TlbParams{128, 16, TlbRepl::Random})
    {}

    MemSystem mem;
    PhysMem pm;
    UltrixVm vm;
};

TEST(UltrixVm, UnpartitionedTlbAblationWorks)
{
    // With zero protected slots (the protected-slot ablation), root
    // mappings land in the normal region and the system still runs.
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().rhandlerCalls, 1u);
    Vpn upte_page = vm.pageTable().uptPageVpn(0x10000000 >> 12);
    EXPECT_TRUE(vm.dtlb()->contains(upte_page));
}

TEST(UltrixVm, FirstDataMissRunsBothHandlers)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    // Cold D-TLB: user handler, then nested root handler (the UPT page
    // itself is unmapped), then the UPTE load.
    EXPECT_EQ(s.uhandlerCalls, 1u);
    EXPECT_EQ(s.uhandlerInstrs, 10u);
    EXPECT_EQ(s.rhandlerCalls, 1u);
    EXPECT_EQ(s.rhandlerInstrs, 20u);
    EXPECT_EQ(s.khandlerCalls, 0u); // Ultrix has no kernel handler
    EXPECT_EQ(s.interrupts, 2u);    // nested interrupt counted
    EXPECT_EQ(s.pteLoads, 2u);
    // Attribution: one user-level and one root-level PTE load.
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteUser).accesses, 1u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteRoot).accesses, 1u);
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::PteKernel).accesses, 0u);
    // Handler code fetched through the I-side: 10 + 20 instructions.
    EXPECT_EQ(f.mem.stats().instOf(AccessClass::HandlerFetch).accesses,
              30u);
    // And the user reference itself went through.
    EXPECT_EQ(f.mem.stats().dataOf(AccessClass::User).accesses, 1u);
}

TEST(UltrixVm, SecondMissInSameUptPageSkipsRootHandler)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // A different user page whose UPTE lives in the same (now-mapped)
    // UPT page: only the user handler runs.
    f.vm.dataRef(Access{0x10001000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 2u);
    EXPECT_EQ(s.rhandlerCalls, 1u);
    EXPECT_EQ(s.interrupts, 3u);
    EXPECT_EQ(s.pteLoads, 3u);
}

TEST(UltrixVm, TlbHitIsFree)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    VmStats before = f.vm.vmStats();
    f.vm.dataRef(Access{0x10000004, 0, false}); // same page: D-TLB hit
    const VmStats &after = f.vm.vmStats();
    EXPECT_EQ(after.uhandlerCalls, before.uhandlerCalls);
    EXPECT_EQ(after.interrupts, before.interrupts);
    EXPECT_EQ(after.pteLoads, before.pteLoads);
}

TEST(UltrixVm, InstMissFillsItlbNotDtlb)
{
    Fixture f;
    f.vm.instRef(Access{0x00400000});
    EXPECT_TRUE(f.vm.itlb()->contains(0x00400000 >> 12));
    // Walking for an instruction does not install the user page in
    // the D-TLB (only the UPT page mapping lands there, protected).
    EXPECT_FALSE(f.vm.dtlb()->contains(0x00400000 >> 12));
    // The instruction fetch itself is a user I-side access.
    EXPECT_EQ(f.mem.stats().instOf(AccessClass::User).accesses, 1u);
}

TEST(UltrixVm, InstWalkChecksDtlbForPte)
{
    Fixture f;
    // Instruction walk loads its UPTE via the D-TLB: the UPT-page
    // mapping must now be resident there (in a protected slot).
    f.vm.instRef(Access{0x00400000});
    Vpn upte_page = f.vm.pageTable().uptPageVpn(0x00400000 >> 12);
    EXPECT_TRUE(f.vm.dtlb()->contains(upte_page));
}

TEST(UltrixVm, ProtectedMappingSurvivesUserPressure)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    Vpn upte_page = f.vm.pageTable().uptPageVpn(0x10000000 >> 12);
    ASSERT_TRUE(f.vm.dtlb()->contains(upte_page));
    // Flood the normal D-TLB slots with >112 distinct pages from the
    // same 4 MB region (so no further root handlers run).
    for (int i = 1; i < 300; ++i)
        f.vm.dataRef(Access{0x10000000 + static_cast<std::uint64_t>(i) * 4096, 0, false});
    EXPECT_TRUE(f.vm.dtlb()->contains(upte_page))
        << "root-level mapping evicted from protected slots";
    EXPECT_EQ(f.vm.vmStats().rhandlerCalls, 1u);
}

TEST(UltrixVm, HandlerCodeTouchesICache)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // Handler fetches hit the I-cache hierarchy at the handler bases.
    EXPECT_GT(f.mem.stats().instOf(AccessClass::HandlerFetch).l1Misses,
              0u);
    EXPECT_TRUE(f.mem.l1i().probe(kUserHandlerBase));
    EXPECT_TRUE(f.mem.l1i().probe(kRootHandlerBase));
}

TEST(UltrixVm, SeparateItlbAndDtlb)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_FALSE(f.vm.itlb()->contains(0x10000000 >> 12));
    f.vm.instRef(Access{0x10000000}); // same page as code: I-TLB must miss
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, 2u);
}

TEST(UltrixVm, CustomHandlerLengths)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    HandlerCosts costs;
    costs.userInstrs = 12;
    costs.rootInstrs = 24;
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16}, costs);
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().uhandlerInstrs, 12u);
    EXPECT_EQ(vm.vmStats().rhandlerInstrs, 24u);
}

TEST(UltrixVm, ResetVmStatsKeepsWarmState)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    f.vm.resetVmStats();
    EXPECT_EQ(f.vm.vmStats().interrupts, 0u);
    // Warm TLB: the next reference to the same page costs nothing.
    f.vm.dataRef(Access{0x10000010, 0, false});
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, 0u);
}

TEST(UltrixVm, Name)
{
    Fixture f;
    EXPECT_EQ(f.vm.name(), "ULTRIX");
}

} // anonymous namespace
} // namespace vmsim
