/**
 * @file
 * Tests for the Results accounting (paper Tables 2 and 3): component
 * arithmetic, cost-model application, interrupt sweeps, and the
 * breakdown <-> total consistency invariants.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "core/results.hh"

namespace vmsim
{
namespace
{

/** Hand-build stats with known counts. */
Results
handResults(Counter instrs = 1000)
{
    MemSystemStats mem;
    auto &ui = mem.inst[static_cast<unsigned>(AccessClass::User)];
    ui.accesses = instrs;
    ui.l1Misses = 100;
    ui.l2Misses = 10;
    auto &ud = mem.data[static_cast<unsigned>(AccessClass::User)];
    ud.accesses = 400;
    ud.l1Misses = 40;
    ud.l2Misses = 4;
    auto &hf = mem.inst[static_cast<unsigned>(AccessClass::HandlerFetch)];
    hf.accesses = 50;
    hf.l1Misses = 5;
    hf.l2Misses = 1;
    auto &pu = mem.data[static_cast<unsigned>(AccessClass::PteUser)];
    pu.accesses = 20;
    pu.l1Misses = 10;
    pu.l2Misses = 2;
    auto &pk = mem.data[static_cast<unsigned>(AccessClass::PteKernel)];
    pk.accesses = 8;
    pk.l1Misses = 4;
    pk.l2Misses = 1;
    auto &pr = mem.data[static_cast<unsigned>(AccessClass::PteRoot)];
    pr.accesses = 6;
    pr.l1Misses = 3;
    pr.l2Misses = 1;

    VmStats vm;
    vm.uhandlerCalls = 5;
    vm.uhandlerInstrs = 50;
    vm.khandlerCalls = 2;
    vm.khandlerInstrs = 40;
    vm.rhandlerCalls = 1;
    vm.rhandlerInstrs = 500;
    vm.hwWalkCycles = 0;
    vm.interrupts = 8;

    CostModel costs;
    costs.l1MissCycles = 20;
    costs.l2MissCycles = 500;
    costs.interruptCycles = 50;

    return Results("TEST", "hand", instrs, mem, vm, costs);
}

TEST(Results, McpiComponents)
{
    Results r = handResults();
    McpiBreakdown m = r.mcpiBreakdown();
    // (100 * 20) / 1000, (40 * 20) / 1000, (10 * 500) / 1000, ...
    EXPECT_DOUBLE_EQ(m.l1iMiss, 2.0);
    EXPECT_DOUBLE_EQ(m.l1dMiss, 0.8);
    EXPECT_DOUBLE_EQ(m.l2iMiss, 5.0);
    EXPECT_DOUBLE_EQ(m.l2dMiss, 2.0);
    EXPECT_DOUBLE_EQ(r.mcpi(), 9.8);
}

TEST(Results, VmcpiComponents)
{
    Results r = handResults();
    VmcpiBreakdown v = r.vmcpiBreakdown();
    EXPECT_DOUBLE_EQ(v.uhandler, 0.05);  // 50 / 1000
    EXPECT_DOUBLE_EQ(v.khandler, 0.04);
    EXPECT_DOUBLE_EQ(v.rhandler, 0.5);
    EXPECT_DOUBLE_EQ(v.upteL2, 0.2);     // 10 * 20 / 1000
    EXPECT_DOUBLE_EQ(v.upteMem, 1.0);    // 2 * 500 / 1000
    EXPECT_DOUBLE_EQ(v.kpteL2, 0.08);
    EXPECT_DOUBLE_EQ(v.kpteMem, 0.5);
    EXPECT_DOUBLE_EQ(v.rpteL2, 0.06);
    EXPECT_DOUBLE_EQ(v.rpteMem, 0.5);
    EXPECT_DOUBLE_EQ(v.handlerL2, 0.1);  // 5 * 20 / 1000
    EXPECT_DOUBLE_EQ(v.handlerMem, 0.5); // 1 * 500 / 1000
}

TEST(Results, BreakdownTotalsMatch)
{
    Results r = handResults();
    McpiBreakdown m = r.mcpiBreakdown();
    VmcpiBreakdown v = r.vmcpiBreakdown();
    EXPECT_DOUBLE_EQ(m.total(), r.mcpi());
    EXPECT_DOUBLE_EQ(v.total(), r.vmcpi());
    double component_sum = 0;
    for (const auto &[tag, value] : v.components())
        component_sum += value;
    EXPECT_DOUBLE_EQ(component_sum, v.total());
}

TEST(Results, ComponentsInTable3Order)
{
    auto comps = handResults().vmcpiBreakdown().components();
    ASSERT_EQ(comps.size(), 11u);
    EXPECT_EQ(comps[0].first, "uhandler");
    EXPECT_EQ(comps[1].first, "upte-L2");
    EXPECT_EQ(comps[2].first, "upte-MEM");
    EXPECT_EQ(comps[3].first, "khandler");
    EXPECT_EQ(comps[6].first, "rhandler");
    EXPECT_EQ(comps[9].first, "handler-L2");
    EXPECT_EQ(comps[10].first, "handler-MEM");
}

TEST(Results, InterruptCpi)
{
    Results r = handResults();
    EXPECT_DOUBLE_EQ(r.interruptCpi(), 8 * 50 / 1000.0);
    // The paper's sweep values.
    EXPECT_DOUBLE_EQ(r.interruptCpiAt(10), 0.08);
    EXPECT_DOUBLE_EQ(r.interruptCpiAt(200), 1.6);
}

TEST(Results, TotalCpiIsOnePlusComponents)
{
    Results r = handResults();
    EXPECT_DOUBLE_EQ(r.totalCpi(),
                     1.0 + r.mcpi() + r.vmcpi() + r.interruptCpi());
}

TEST(Results, HwWalkCyclesCountAsUhandler)
{
    MemSystemStats mem;
    VmStats vm;
    vm.hwWalks = 10;
    vm.hwWalkCycles = 70;
    Results r("INTEL", "x", 1000, mem, vm, CostModel{});
    EXPECT_DOUBLE_EQ(r.vmcpiBreakdown().uhandler, 0.07);
}

TEST(Results, AlternativeCostModel)
{
    MemSystemStats mem;
    auto &ud = mem.data[static_cast<unsigned>(AccessClass::User)];
    ud.l1Misses = 10;
    CostModel costs;
    costs.l1MissCycles = 30;
    Results r("X", "y", 100, mem, VmStats{}, costs);
    EXPECT_DOUBLE_EQ(r.mcpi(), 10 * 30 / 100.0);
}

TEST(Results, ZeroInstructionsPanics)
{
    setQuiet(true);
    EXPECT_THROW(
        Results("X", "y", 0, MemSystemStats{}, VmStats{}, CostModel{}),
        PanicError);
    setQuiet(false);
}

TEST(Results, NaiveOverheadFraction)
{
    Results r = handResults();
    EXPECT_DOUBLE_EQ(r.vmOverheadNaive(), r.vmcpi() / r.totalCpi());
}

TEST(Results, SummaryMentionsEverything)
{
    std::ostringstream oss;
    handResults().printSummary(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("MCPI"), std::string::npos);
    EXPECT_NE(out.find("VMCPI"), std::string::npos);
    EXPECT_NE(out.find("rhandler"), std::string::npos);
    EXPECT_NE(out.find("interrupts"), std::string::npos);
    EXPECT_NE(out.find("TEST"), std::string::npos);
}

TEST(Results, MetadataAccessors)
{
    Results r = handResults();
    EXPECT_EQ(r.system(), "TEST");
    EXPECT_EQ(r.workload(), "hand");
    EXPECT_EQ(r.userInstrs(), 1000u);
    EXPECT_EQ(r.vmStats().interrupts, 8u);
    EXPECT_EQ(r.costs().l2MissCycles, 500u);
}


TEST(Results, ToJsonRoundTripFields)
{
    Results r = handResults();
    std::string out = r.toJson().dump();
    // Spot-check the load-bearing fields.
    EXPECT_NE(out.find("\"system\":\"TEST\""), std::string::npos);
    EXPECT_NE(out.find("\"user_instructions\":1000"),
              std::string::npos);
    EXPECT_NE(out.find("\"interrupts\":8"), std::string::npos);
    EXPECT_NE(out.find("\"uhandler\":0.05"), std::string::npos);
    EXPECT_NE(out.find("\"rhandler\":0.5"), std::string::npos);
    EXPECT_NE(out.find("\"cpi_at_200\":1.6"), std::string::npos);
    EXPECT_NE(out.find("\"total_cpi\""), std::string::npos);
}

TEST(Results, ToJsonParsesAsBalancedStructure)
{
    // Cheap structural sanity: balanced braces/brackets, quotes even.
    std::string out = handResults().toJson().dump(2);
    long depth = 0;
    long quotes = 0;
    for (char c : out) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        if (c == '"')
            ++quotes;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0);
}

} // anonymous namespace
} // namespace vmsim
