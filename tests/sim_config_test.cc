/**
 * @file
 * Tests for SimConfig::validate(): one case per rule, each asserting
 * that the diagnostic names the offending field (so a failed sweep
 * cell's error message pinpoints the bad knob), plus the happy path.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/error.hh"
#include "base/logging.hh"
#include "core/sim_config.hh"

namespace vmsim
{
namespace
{

/** Expect validate() to fail with InvalidConfig naming @p field. */
void
expectRejects(const SimConfig &cfg, const std::string &field)
{
    Status s = cfg.validate();
    ASSERT_FALSE(s.ok()) << "expected rejection of " << field;
    EXPECT_EQ(s.error().code, ErrorCode::InvalidConfig);
    EXPECT_EQ(s.error().context, field);
    EXPECT_NE(s.error().message.find(field), std::string::npos)
        << "message does not name the field: " << s.error().message;
}

TEST(SimConfigValidate, DefaultConfigIsValid)
{
    EXPECT_TRUE(SimConfig{}.validate().ok());
}

TEST(SimConfigValidate, AllPaperSystemsValidate)
{
    for (SystemKind kind : kPaperSystems) {
        SimConfig cfg;
        cfg.kind = kind;
        EXPECT_TRUE(cfg.validate().ok()) << kindName(kind);
    }
}

TEST(SimConfigValidate, L1SizeMustBePowerOfTwo)
{
    SimConfig cfg;
    cfg.l1.sizeBytes = 0;
    expectRejects(cfg, "l1.sizeBytes");
    cfg.l1.sizeBytes = 3000;
    expectRejects(cfg, "l1.sizeBytes");
}

TEST(SimConfigValidate, L2MustBeAtLeastL1)
{
    SimConfig cfg;
    cfg.l1.sizeBytes = 64 * 1024;
    cfg.l2.sizeBytes = 32 * 1024;
    expectRejects(cfg, "l2.sizeBytes");
}

TEST(SimConfigValidate, L2LineMustBeAtLeastL1Line)
{
    SimConfig cfg;
    cfg.l1.lineSize = 64;
    cfg.l2.lineSize = 32;
    expectRejects(cfg, "l2.lineSize");
}

TEST(SimConfigValidate, TlbEntriesRequiredForTlbSystems)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Ultrix;
    cfg.tlbEntries = 0;
    cfg.tlbProtectedSlots = 0;
    expectRejects(cfg, "tlbEntries");

    // ...but TLB-less organizations don't care.
    cfg.kind = SystemKind::Notlb;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SimConfigValidate, ProtectedSlotsMustLeaveCapacity)
{
    SimConfig cfg;
    cfg.tlbEntries = 16;
    cfg.tlbProtectedSlots = 16;
    expectRejects(cfg, "tlbProtectedSlots");
}

TEST(SimConfigValidate, PageBitsRange)
{
    SimConfig cfg;
    cfg.pageBits = 9;
    expectRejects(cfg, "pageBits");
    cfg.pageBits = 21;
    expectRejects(cfg, "pageBits");
    cfg.pageBits = 12;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SimConfigValidate, PhysMemMustBePowerOfTwo)
{
    SimConfig cfg;
    cfg.physMemBytes = 0;
    expectRejects(cfg, "physMemBytes");
    cfg.physMemBytes = 10'000'000;
    expectRejects(cfg, "physMemBytes");
}

TEST(SimConfigValidate, HptRatioMustBePositive)
{
    SimConfig cfg;
    cfg.hptRatio = 0;
    expectRejects(cfg, "hptRatio");
}

TEST(SimConfigValidate, L1MissCyclesMustBeNonzero)
{
    SimConfig cfg;
    cfg.costs.l1MissCycles = 0;
    expectRejects(cfg, "costs.l1MissCycles");
}

TEST(SimConfigValidate, L2MissCyclesMustBeNonzero)
{
    SimConfig cfg;
    cfg.costs.l2MissCycles = 0;
    expectRejects(cfg, "costs.l2MissCycles");
}

TEST(SimConfigValidate, HwWalkOverlapRange)
{
    SimConfig cfg;
    cfg.costs.hwWalkOverlap = -0.1;
    expectRejects(cfg, "costs.hwWalkOverlap");
    cfg.costs.hwWalkOverlap = 1.1;
    expectRejects(cfg, "costs.hwWalkOverlap");
    cfg.costs.hwWalkOverlap = 1.0;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SimConfigValidate, OrThrowBridgesToVmsimError)
{
    setQuiet(true);
    SimConfig cfg;
    cfg.hptRatio = 0;
    try {
        cfg.validate().orThrow();
        FAIL() << "orThrow did not throw";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
        EXPECT_EQ(e.error().context, "hptRatio");
    }
    setQuiet(false);
}

} // anonymous namespace
} // namespace vmsim
