/**
 * @file
 * Tests for the queue-based ThreadPool and the parallelFor /
 * parallelMap helpers: every submitted task runs exactly once, task
 * exceptions propagate out of wait(), and the helpers produce the
 * same results at any job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/thread_pool.hh"

namespace vmsim
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleThreadStillRunsTasks)
{
    std::atomic<int> count{0};
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SurvivingTasksStillRunAfterError)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i)
        pool.submit([&count, i] {
            if (i == 3)
                throw std::runtime_error("one bad task");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 19);
}

TEST(ThreadPool, ReusableAfterException)
{
    // A throwing task must not wedge the pool: after wait() reports
    // the error, new work runs normally.
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("first batch failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] { ++count; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, MultipleThrowersReportOne)
{
    // Several tasks throwing concurrently is still one orderly error
    // from wait(), not a terminate() or a deadlock.
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i)
        pool.submit([] { throw std::runtime_error("everybody fails"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // And the pool is still healthy.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, NonStandardExceptionPropagates)
{
    ThreadPool pool(2);
    pool.submit([] { throw 42; });
    EXPECT_THROW(pool.wait(), int);
}

TEST(ThreadPool, DestructorDrainsThrowingTasks)
{
    // Destroying a pool with throwing tasks still in flight must not
    // call std::terminate; the stored exception is simply dropped.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i)
            pool.submit([&count] {
                ++count;
                throw std::runtime_error("unobserved failure");
            });
        // no wait(): destructor joins.
    }
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    ThreadPool pool(4);
    parallelFor(pool, hits.size(),
                [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelMap, MatchesSerialResults)
{
    auto square = [](std::size_t i) {
        return static_cast<int>(i * i);
    };
    std::vector<int> serial = parallelMap(1, 100, square);
    std::vector<int> parallel = parallelMap(4, 100, square);
    EXPECT_EQ(serial, parallel);
    ASSERT_EQ(serial.size(), 100u);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], static_cast<int>(i * i));
}

TEST(ParallelMap, EmptyAndSingleElement)
{
    auto identity = [](std::size_t i) { return i; };
    EXPECT_TRUE(parallelMap(4, 0, identity).empty());
    std::vector<std::size_t> one = parallelMap(4, 1, identity);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(ParallelMap, ExceptionPropagates)
{
    EXPECT_THROW(parallelMap(4, 10,
                             [](std::size_t i) -> int {
                                 if (i == 7)
                                     throw std::runtime_error("boom");
                                 return 0;
                             }),
                 std::runtime_error);
}

} // anonymous namespace
} // namespace vmsim
