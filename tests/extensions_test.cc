/**
 * @file
 * Tests for the extension features beyond the paper's core study:
 * unified L2, Pentium-Pro-style walk overlap, context-switch flushes,
 * the interleaved-trace combinator, and the user TLB-miss counters.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/factory.hh"
#include "core/simulator.hh"
#include "mem/mem_system.hh"
#include "os/intel_vm.hh"
#include "os/notlb_vm.hh"
#include "os/ultrix_vm.hh"
#include "trace/interleaved.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

CacheParams l1() { return CacheParams{32_KiB, 32}; }
CacheParams l2() { return CacheParams{1_MiB, 64}; }

// ------------------------------------------------------------ unified L2

TEST(UnifiedL2, SharedCacheSeesBothSides)
{
    MemSystem m(CacheParams{1_KiB, 32}, CacheParams{8_KiB, 64}, 1, true);
    EXPECT_TRUE(m.unifiedL2());
    // Unified L2 has twice the per-side capacity.
    EXPECT_EQ(m.l2i().params().sizeBytes, 16_KiB);
    EXPECT_EQ(&m.l2i(), &m.l2d());
    // A line brought in by a data access hits on the inst side at L2
    // (after an L1i miss), because the L2 is shared.
    m.dataAccess(0x4000, 4, false, AccessClass::User);
    EXPECT_EQ(m.instFetch(0x4000, AccessClass::User), MemLevel::L2);
}

TEST(UnifiedL2, SplitCachesDoNotShare)
{
    MemSystem m(CacheParams{1_KiB, 32}, CacheParams{8_KiB, 64}, 1, false);
    EXPECT_FALSE(m.unifiedL2());
    EXPECT_NE(&m.l2i(), &m.l2d());
    m.dataAccess(0x4000, 4, false, AccessClass::User);
    EXPECT_EQ(m.instFetch(0x4000, AccessClass::User), MemLevel::Memory);
}

TEST(UnifiedL2, InvalidateAllCoversSharedCache)
{
    MemSystem m(CacheParams{1_KiB, 32}, CacheParams{8_KiB, 64}, 1, true);
    m.dataAccess(0x4000, 4, false, AccessClass::User);
    m.invalidateAll();
    EXPECT_EQ(m.dataAccess(0x4000, 4, false, AccessClass::User),
              MemLevel::Memory);
}

TEST(UnifiedL2, EndToEndThroughConfig)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Base;
    cfg.l1 = l1();
    cfg.l2 = l2();
    cfg.unifiedL2 = true;
    Results r = runOnce(cfg, "gcc", 50000, 10000);
    EXPECT_GT(r.totalCpi(), 1.0);
}

// ----------------------------------------------------------- FSM overlap

TEST(HwWalkOverlap, FullOverlapHidesFsmCycles)
{
    MemSystemStats mem;
    VmStats vm;
    vm.hwWalks = 10;
    vm.hwWalkCycles = 70;
    CostModel base_costs;
    CostModel hidden = base_costs;
    hidden.hwWalkOverlap = 1.0;
    Results visible("X", "y", 1000, mem, vm, base_costs);
    Results overlapped("X", "y", 1000, mem, vm, hidden);
    EXPECT_DOUBLE_EQ(visible.vmcpiBreakdown().uhandler, 0.07);
    EXPECT_DOUBLE_EQ(overlapped.vmcpiBreakdown().uhandler, 0.0);
}

TEST(HwWalkOverlap, PartialOverlapScalesLinearly)
{
    MemSystemStats mem;
    VmStats vm;
    vm.hwWalkCycles = 100;
    CostModel costs;
    costs.hwWalkOverlap = 0.25;
    Results r("X", "y", 1000, mem, vm, costs);
    EXPECT_DOUBLE_EQ(r.vmcpiBreakdown().uhandler, 0.075);
}

TEST(HwWalkOverlap, DoesNotAffectSoftwareHandlers)
{
    MemSystemStats mem;
    VmStats vm;
    vm.uhandlerInstrs = 50;
    CostModel costs;
    costs.hwWalkOverlap = 1.0;
    Results r("X", "y", 1000, mem, vm, costs);
    EXPECT_DOUBLE_EQ(r.vmcpiBreakdown().uhandler, 0.05);
}

TEST(HwWalkOverlap, OutOfRangeRejected)
{
    setQuiet(true);
    SimConfig cfg;
    cfg.costs.hwWalkOverlap = 1.5;
    EXPECT_FALSE(cfg.validate().ok());
    EXPECT_THROW(System{cfg}, FatalError);
    cfg.costs.hwWalkOverlap = -0.1;
    EXPECT_FALSE(cfg.validate().ok());
    setQuiet(false);
}

// -------------------------------------------------------- context switch

TEST(ContextSwitch, FlushesTlbsOnTlbSystems)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.dataRef(Access{0x10000000, 0, false});
    ASSERT_GT(vm.dtlb()->validEntries(), 0u);
    vm.contextSwitch();
    EXPECT_EQ(vm.dtlb()->validEntries(), 0u);
    EXPECT_EQ(vm.itlb()->validEntries(), 0u);
    EXPECT_EQ(vm.vmStats().ctxSwitches, 1u);
}

TEST(ContextSwitch, NoTranslationStateOnGlobalSpaceSystems)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    NotlbVm vm(mem, pm);
    vm.dataRef(Access{0x10000000, 0, false});
    VmStats before = vm.vmStats();
    vm.contextSwitch();
    EXPECT_EQ(vm.vmStats().ctxSwitches, 1u);
    // Still warm: the very next reference hits without a handler.
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().uhandlerCalls, before.uhandlerCalls);
}

TEST(ContextSwitch, SimulatorHonorsInterval)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    GccLikeWorkload trace(1);
    Simulator sim(vm, trace, 1000);
    sim.run(10000);
    EXPECT_EQ(vm.vmStats().ctxSwitches, 10u);
}

TEST(ContextSwitch, ZeroIntervalNeverSwitches)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    GccLikeWorkload trace(1);
    Simulator sim(vm, trace, 0);
    sim.run(10000);
    EXPECT_EQ(vm.vmStats().ctxSwitches, 0u);
}

TEST(ContextSwitch, RaisesWalksForTlbSystems)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Intel;
    cfg.l1 = l1();
    cfg.l2 = l2();
    Results calm = runOnce(cfg, "gcc", 100000, 50000);
    cfg.ctxSwitchInterval = 5000;
    Results churned = runOnce(cfg, "gcc", 100000, 50000);
    EXPECT_GT(churned.vmStats().hwWalks, calm.vmStats().hwWalks);
}

TEST(ContextSwitch, NotlbImmuneEndToEnd)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Notlb;
    cfg.l1 = l1();
    cfg.l2 = l2();
    Results calm = runOnce(cfg, "gcc", 100000, 50000);
    cfg.ctxSwitchInterval = 5000;
    Results churned = runOnce(cfg, "gcc", 100000, 50000);
    EXPECT_EQ(churned.vmStats().uhandlerCalls,
              calm.vmStats().uhandlerCalls);
}

// ------------------------------------------------------ interleaved trace

/** Fixed-length source emitting its id as the PC. */
class StubTrace : public TraceSource
{
  public:
    StubTrace(std::uint32_t id, Counter len)
        : id_(id), left_(len)
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (left_ == 0)
            return false;
        --left_;
        rec = TraceRecord{id_, 0, MemOp::None};
        return true;
    }

  private:
    std::uint32_t id_;
    Counter left_;
};

TEST(InterleavedTrace, RoundRobinsWithQuantum)
{
    StubTrace a(1, 100), b(2, 100);
    InterleavedTrace mix({&a, &b}, 3);
    TraceRecord rec;
    std::vector<std::uint32_t> pcs;
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(mix.next(rec));
        pcs.push_back(rec.pc);
    }
    std::vector<std::uint32_t> expect = {1, 1, 1, 2, 2, 2,
                                         1, 1, 1, 2, 2, 2};
    EXPECT_EQ(pcs, expect);
}

TEST(InterleavedTrace, SkipsExhaustedSources)
{
    StubTrace a(1, 2), b(2, 10);
    InterleavedTrace mix({&a, &b}, 4);
    TraceRecord rec;
    std::vector<std::uint32_t> pcs;
    while (mix.next(rec))
        pcs.push_back(rec.pc);
    // a contributes its 2 records; b contributes all 10.
    EXPECT_EQ(pcs.size(), 12u);
    EXPECT_EQ(std::count(pcs.begin(), pcs.end(), 1u), 2);
    EXPECT_EQ(std::count(pcs.begin(), pcs.end(), 2u), 10);
}

TEST(InterleavedTrace, EndsWhenAllDry)
{
    StubTrace a(1, 1), b(2, 1);
    InterleavedTrace mix({&a, &b}, 5);
    TraceRecord rec;
    EXPECT_TRUE(mix.next(rec));
    EXPECT_TRUE(mix.next(rec));
    EXPECT_FALSE(mix.next(rec));
    EXPECT_FALSE(mix.next(rec)); // stays dry
}

TEST(InterleavedTrace, SingleSourcePassesThrough)
{
    StubTrace a(7, 5);
    InterleavedTrace mix({&a}, 2);
    TraceRecord rec;
    int n = 0;
    while (mix.next(rec)) {
        EXPECT_EQ(rec.pc, 7u);
        ++n;
    }
    EXPECT_EQ(n, 5);
}

TEST(InterleavedTrace, InvalidConfigs)
{
    setQuiet(true);
    StubTrace a(1, 1);
    EXPECT_THROW(InterleavedTrace({}, 1), FatalError);
    EXPECT_THROW(InterleavedTrace({&a}, 0), FatalError);
    EXPECT_THROW(InterleavedTrace({&a, nullptr}, 1), FatalError);
    setQuiet(false);
}

TEST(InterleavedTrace, DrivesSimulatorMultiprogrammed)
{
    GccLikeWorkload gcc_proc(1);
    IjpegLikeWorkload ijpeg_proc(2);
    InterleavedTrace mix({&gcc_proc, &ijpeg_proc}, 10000);

    SimConfig cfg;
    cfg.kind = SystemKind::Ultrix;
    cfg.l1 = l1();
    cfg.l2 = l2();
    cfg.ctxSwitchInterval = 10000; // flush at each quantum boundary
    System sys(cfg);
    Results r = sys.run(mix, 100000, "gcc+ijpeg");
    EXPECT_EQ(r.userInstrs(), 100000u);
    EXPECT_GE(r.vmStats().ctxSwitches, 9u);
    EXPECT_GT(r.vmcpi(), 0.0);
}

// ------------------------------------------------------ TLB miss counters

TEST(TlbMissCounters, CountUserMissesOnly)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    // One data miss (which internally also misses the D-TLB on the
    // UPT page — that nested miss must NOT count here).
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().dtlbMisses, 1u);
    EXPECT_EQ(vm.vmStats().itlbMisses, 0u);
    vm.instRef(Access{0x00400000});
    EXPECT_EQ(vm.vmStats().itlbMisses, 1u);
    // Hits do not count.
    vm.dataRef(Access{0x10000004, 0, false});
    vm.instRef(Access{0x00400004});
    EXPECT_EQ(vm.vmStats().dtlbMisses, 1u);
    EXPECT_EQ(vm.vmStats().itlbMisses, 1u);
}

TEST(TlbMissCounters, MatchTlbObjectCounters)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Intel;
    cfg.l1 = l1();
    cfg.l2 = l2();
    auto trace = makeWorkload("gcc", 5);
    System sys(cfg);
    Results r = sys.run(*trace, 100000, "gcc");
    // For INTEL every user TLB miss is one hardware walk.
    EXPECT_EQ(r.vmStats().itlbMisses + r.vmStats().dtlbMisses,
              r.vmStats().hwWalks);
}

TEST(TlbMissCounters, SoftwareSchemeMatchesUhandlerCalls)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Parisc;
    cfg.l1 = l1();
    cfg.l2 = l2();
    Results r = runOnce(cfg, "vortex", 100000, 0);
    // PA-RISC: one user handler per user TLB miss, nothing nested.
    EXPECT_EQ(r.vmStats().itlbMisses + r.vmStats().dtlbMisses,
              r.vmStats().uhandlerCalls);
}


// ----------------------------------------------------------- L2 TLB

TEST(L2Tlb, HitSkipsRefillEntirely)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.attachL2Tlb(TlbParams{1024, 0}, 2);
    ASSERT_NE(vm.l2tlb(), nullptr);

    vm.dataRef(Access{0x10000000, 0, false});
    VmStats first = vm.vmStats();
    EXPECT_EQ(first.l2TlbHits, 0u); // cold: full walk ran

    // Evict the page from the (tiny-by-comparison) L1 D-TLB only:
    // random replacement needs an unbounded-but-terminating flood.
    for (int i = 1; vm.dtlb()->contains(0x10000000 >> 12); ++i) {
        ASSERT_LT(i, 100000) << "flood failed to evict";
        vm.dataRef(Access{0x10000000 +
                       static_cast<std::uint64_t>(1 + i % 500) * 4096, 0, false});
    }

    VmStats before = vm.vmStats();
    vm.dataRef(Access{0x10000000, 0, false}); // L1 miss, L2 TLB hit
    const VmStats &after = vm.vmStats();
    EXPECT_EQ(after.l2TlbHits, before.l2TlbHits + 1);
    EXPECT_EQ(after.interrupts, before.interrupts);
    EXPECT_EQ(after.uhandlerCalls, before.uhandlerCalls);
    EXPECT_EQ(after.pteLoads, before.pteLoads);
    EXPECT_EQ(after.hwWalkCycles, before.hwWalkCycles + 2);
    EXPECT_TRUE(vm.dtlb()->contains(0x10000000 >> 12));
}

TEST(L2Tlb, MissFallsThroughToWalk)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    IntelVm vm(mem, pm, TlbParams{128, 0}, TlbParams{128, 0});
    vm.attachL2Tlb(TlbParams{256, 0}, 2);
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().l2TlbHits, 0u);
    EXPECT_EQ(vm.vmStats().hwWalks, 1u);
    EXPECT_TRUE(vm.l2tlb()->contains(0x10000000 >> 12)); // filled
}

TEST(L2Tlb, NoneAttachedByDefault)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    EXPECT_EQ(vm.l2tlb(), nullptr);
    vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(vm.vmStats().l2TlbHits, 0u);
}

TEST(L2Tlb, FactoryAttachesFromConfig)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Parisc;
    cfg.l1 = l1();
    cfg.l2 = l2();
    cfg.l2TlbEntries = 512;
    System sys(cfg);
    EXPECT_NE(sys.vm().l2tlb(), nullptr);
    EXPECT_EQ(sys.vm().l2tlb()->params().entries, 512u);

    // TLB-less organizations get none even when requested.
    cfg.kind = SystemKind::Notlb;
    System notlb(cfg);
    EXPECT_EQ(notlb.vm().l2tlb(), nullptr);
}

TEST(L2Tlb, ReducesSoftwareOverheadEndToEnd)
{
    SimConfig cfg;
    cfg.kind = SystemKind::Ultrix;
    cfg.l1 = l1();
    cfg.l2 = l2();
    Results without = runOnce(cfg, "vortex", 100000, 50000);
    cfg.l2TlbEntries = 2048;
    Results with_l2 = runOnce(cfg, "vortex", 100000, 50000);
    EXPECT_LT(with_l2.vmcpi() + with_l2.interruptCpi(),
              without.vmcpi() + without.interruptCpi());
    EXPECT_GT(with_l2.vmStats().l2TlbHits, 0u);
}

TEST(L2Tlb, FlushedOnContextSwitch)
{
    MemSystem mem(l1(), l2());
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.attachL2Tlb(TlbParams{256, 0}, 2);
    vm.dataRef(Access{0x10000000, 0, false});
    ASSERT_TRUE(vm.l2tlb()->contains(0x10000000 >> 12));
    vm.contextSwitch();
    EXPECT_FALSE(vm.l2tlb()->contains(0x10000000 >> 12));
}

} // anonymous namespace
} // namespace vmsim
