/**
 * @file
 * Tests for the driver layer: Simulator semantics (accumulation,
 * trace-end, warmup), the System wrapper, the sweep grids, and the
 * VmSystem base-class helpers (handler fetch mechanics, handler
 * layout constants).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "os/base_vm.hh"
#include "os/mach_vm.hh"
#include "os/ultrix_vm.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

/** A trace of n no-op instructions at ascending PCs. */
class CountedTrace : public TraceSource
{
  public:
    explicit CountedTrace(Counter n) : left_(n) {}

    bool
    next(TraceRecord &rec) override
    {
        if (left_ == 0)
            return false;
        --left_;
        rec = TraceRecord{pc_, 0, MemOp::None};
        pc_ += 4;
        return true;
    }

  private:
    Counter left_;
    std::uint32_t pc_ = 0x00400000;
};

SimConfig
cfg(SystemKind kind = SystemKind::Base)
{
    SimConfig c;
    c.kind = kind;
    c.l1 = CacheParams{32_KiB, 32};
    c.l2 = CacheParams{1_MiB, 64};
    return c;
}

// -------------------------------------------------------------- Simulator

TEST(Simulator, RunsExactlyMaxInstrs)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    BaseVm vm(mem);
    CountedTrace trace(1000);
    Simulator sim(vm, trace);
    EXPECT_EQ(sim.run(600), 600u);
    EXPECT_EQ(sim.instructionsExecuted(), 600u);
}

TEST(Simulator, StopsAtTraceEnd)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    BaseVm vm(mem);
    CountedTrace trace(100);
    Simulator sim(vm, trace);
    EXPECT_EQ(sim.run(600), 100u);
    EXPECT_EQ(sim.run(600), 0u);
    EXPECT_EQ(sim.instructionsExecuted(), 100u);
}

TEST(Simulator, RepeatedRunsAccumulate)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    BaseVm vm(mem);
    CountedTrace trace(1000);
    Simulator sim(vm, trace);
    sim.run(100);
    sim.run(200);
    sim.run(300);
    EXPECT_EQ(sim.instructionsExecuted(), 600u);
    EXPECT_EQ(mem.stats().instOf(AccessClass::User).accesses, 600u);
}

TEST(Simulator, MemOpsReachDataSide)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    BaseVm vm(mem);
    std::vector<TraceRecord> recs = {
        {0x400000, 0x10000000, MemOp::Load},
        {0x400004, 0, MemOp::None},
        {0x400008, 0x10000004, MemOp::Store},
    };
    struct VecTrace : TraceSource
    {
        std::vector<TraceRecord> v;
        std::size_t i = 0;
        bool
        next(TraceRecord &rec) override
        {
            if (i >= v.size())
                return false;
            rec = v[i++];
            return true;
        }
    } trace;
    trace.v = recs;
    Simulator sim(vm, trace);
    sim.run(10);
    EXPECT_EQ(mem.stats().dataOf(AccessClass::User).accesses, 2u);
    EXPECT_EQ(mem.storeCount(), 1u);
}

TEST(Simulator, ContextSwitchCountAcrossRuns)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    CountedTrace trace(10000);
    Simulator sim(vm, trace, 100);
    sim.run(500); // 5 switches
    sim.run(500); // interval state persists across run() calls
    EXPECT_EQ(vm.vmStats().ctxSwitches, 10u);
}

// ----------------------------------------------------------------- System

TEST(System, WarmupDiscardsStatsButKeepsState)
{
    System sys(cfg(SystemKind::Ultrix));
    GccLikeWorkload trace(9);
    Results r = sys.run(trace, 20000, "gcc", 20000);
    // Only measured instructions count.
    EXPECT_EQ(r.userInstrs(), 20000u);
    // Warm TLBs/caches: far fewer events than a cold 20K run.
    System cold(cfg(SystemKind::Ultrix));
    GccLikeWorkload trace2(9);
    Results rc = cold.run(trace2, 20000, "gcc", 0);
    EXPECT_LT(r.vmStats().uhandlerCalls, rc.vmStats().uhandlerCalls);
}

TEST(System, AccessorsExposeParts)
{
    System sys(cfg(SystemKind::Parisc));
    EXPECT_EQ(sys.vm().name(), "PA-RISC");
    EXPECT_EQ(sys.physMem().sizeBytes(), 8_MiB);
    EXPECT_EQ(sys.config().kind, SystemKind::Parisc);
    EXPECT_EQ(sys.instructionsExecuted(), 0u);
}

TEST(System, RunOnceDefaultWarmupIsQuarter)
{
    // runOnce's default warmup = instrs / 4; verify indirectly: the
    // returned instruction count is the measured count only.
    Results r = runOnce(cfg(SystemKind::Base), "ijpeg", 8000);
    EXPECT_EQ(r.userInstrs(), 8000u);
}

TEST(System, SweepCellMatchesRunOnce)
{
    Results a = sweepCell(cfg(SystemKind::Intel), "gcc", 20000);
    Results b = runOnce(cfg(SystemKind::Intel), "gcc", 20000);
    EXPECT_DOUBLE_EQ(a.totalCpi(), b.totalCpi());
}

// ------------------------------------------------------------ sweep grids

TEST(SweepGrids, FullGridsMatchTable1)
{
    auto l1 = paperL1Sizes(true);
    std::vector<std::uint64_t> expect_l1 = {1_KiB,  2_KiB,  4_KiB,
                                            8_KiB,  16_KiB, 32_KiB,
                                            64_KiB, 128_KiB};
    EXPECT_EQ(l1, expect_l1);

    auto l2 = paperL2Sizes(true);
    std::vector<std::uint64_t> expect_l2 = {1_MiB, 2_MiB, 4_MiB};
    EXPECT_EQ(l2, expect_l2);

    auto ints = paperInterruptCosts();
    std::vector<Cycles> expect_ints = {10, 50, 200};
    EXPECT_EQ(ints, expect_ints);
}

TEST(SweepGrids, ReducedGridsAreSubsets)
{
    auto full = paperL1Sizes(true);
    for (auto v : paperL1Sizes(false))
        EXPECT_NE(std::find(full.begin(), full.end(), v), full.end());
    auto full_lines = paperLineSizes(true);
    for (auto combo : paperLineSizes(false))
        EXPECT_NE(std::find(full_lines.begin(), full_lines.end(), combo),
                  full_lines.end());
}

TEST(SweepGrids, LineCombosRespectHierarchy)
{
    for (bool full : {false, true})
        for (auto [a, b] : paperLineSizes(full)) {
            EXPECT_LE(a, b);
            EXPECT_TRUE(isPowerOf2(a));
            EXPECT_TRUE(isPowerOf2(b));
        }
}

// ----------------------------------------------------- VmSystem mechanics

TEST(VmSystemBase, HandlerBasesArePageAlignedAndDistinct)
{
    EXPECT_TRUE(isAligned(kUserHandlerBase, 4096));
    EXPECT_TRUE(isAligned(kKernelHandlerBase, 4096));
    EXPECT_TRUE(isAligned(kRootHandlerBase, 4096));
    EXPECT_NE(kUserHandlerBase >> 12, kKernelHandlerBase >> 12);
    EXPECT_NE(kKernelHandlerBase >> 12, kRootHandlerBase >> 12);
    // All in unmapped (kernel-half) space.
    EXPECT_GE(kUserHandlerBase, kPhysWindowBase);
}

TEST(VmSystemBase, MachRootHandlerFitsItsPage)
{
    // The 500-instruction MACH root handler must stay within one 4 KB
    // page (500 * 4 = 2000 bytes) so handler pages never overlap.
    EXPECT_LE(MachVm::machDefaultCosts().rootInstrs * kInstrBytes,
              4096u);
}

TEST(VmSystemBase, FetchHandlerTouchesSequentialWords)
{
    MemSystem mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64});
    PhysMem pm(8_MiB, 12);
    UltrixVm vm(mem, pm, TlbParams{128, 16}, TlbParams{128, 16});
    vm.dataRef(Access{0x10000000, 0, false}); // user (10) + root (20) handlers
    // 30 sequential 4-byte fetches over 32-byte lines, two distinct
    // page-aligned bases: ceil(40/32) + ceil(80/32) line fills.
    const auto &hf = mem.stats().instOf(AccessClass::HandlerFetch);
    EXPECT_EQ(hf.accesses, 30u);
    EXPECT_EQ(hf.l1Misses, divCeil(10 * 4, 32) + divCeil(20 * 4, 32));
}


TEST(SweepSeeds, RunSeedsSummarizesReplications)
{
    SimConfig c = cfg(SystemKind::Ultrix);
    c.tlbEntries = 32; // small TLB: random replacement adds variance
    c.tlbProtectedSlots = 8;
    SeedStats s = runSeeds(c, "vortex", 20000, 5000, 4,
                           [](const Results &r) { return r.vmcpi(); });
    EXPECT_EQ(s.seeds, 4u);
    EXPECT_GT(s.mean, 0.0);
    EXPECT_GE(s.max, s.mean);
    EXPECT_LE(s.min, s.mean);
    EXPECT_GE(s.stddev, 0.0);
}

TEST(SweepSeeds, SingleSeedHasZeroSpread)
{
    SeedStats s = runSeeds(cfg(SystemKind::Base), "ijpeg", 10000, 2000,
                           1, [](const Results &r) {
                               return r.totalCpi();
                           });
    EXPECT_EQ(s.seeds, 1u);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.min, s.max);
}

TEST(SweepSeeds, ZeroSeedsRejected)
{
    setQuiet(true);
    EXPECT_THROW(runSeeds(cfg(), "gcc", 1000, 0, 0,
                          [](const Results &r) { return r.mcpi(); }),
                 FatalError);
    setQuiet(false);
}

} // anonymous namespace
} // namespace vmsim
