/**
 * @file
 * Tests for the batched trace pipeline: nextBatch() equivalence with
 * next() across every source, recorded traces and replay cursors, the
 * shared trace cache, and — most importantly — bit-identical results,
 * event streams, and interval samples between the scalar and batched
 * simulation loops for all nine VM organizations.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/event.hh"
#include "obs/interval.hh"
#include "trace/interleaved.hh"
#include "trace/recorded.hh"
#include "trace/synthetic/workloads.hh"
#include "trace/trace_file.hh"

namespace vmsim
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempFile
{
  public:
    TempFile()
    {
        char tmpl[] = "/tmp/vmsim_batch_XXXXXX";
        int fd = mkstemp(tmpl);
        if (fd >= 0)
            ::close(fd);
        path_ = tmpl;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Deterministic bounded source that only implements next(). */
class CountedSource : public TraceSource
{
  public:
    explicit CountedSource(Counter total) : total_(total) {}

    bool
    next(TraceRecord &rec) override
    {
        if (emitted_ >= total_)
            return false;
        rec.pc = static_cast<std::uint32_t>(0x1000 + emitted_ * 4);
        rec.daddr = static_cast<std::uint32_t>(0x80000 + emitted_ * 8);
        rec.op = emitted_ % 3 == 0   ? MemOp::None
                 : emitted_ % 3 == 1 ? MemOp::Load
                                     : MemOp::Store;
        ++emitted_;
        return true;
    }

  private:
    Counter total_;
    Counter emitted_ = 0;
};

/** Drain @p source one record at a time. */
std::vector<TraceRecord>
drainScalar(TraceSource &source)
{
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (source.next(rec))
        out.push_back(rec);
    return out;
}

/** Drain @p source via nextBatch() in chunks of @p chunk. */
std::vector<TraceRecord>
drainBatched(TraceSource &source, std::size_t chunk)
{
    std::vector<TraceRecord> out;
    std::vector<TraceRecord> buf(chunk);
    while (true) {
        std::size_t got = source.nextBatch(buf.data(), chunk);
        out.insert(out.end(), buf.begin(), buf.begin() + got);
        if (got < chunk)
            break;
    }
    return out;
}

TEST(NextBatch, DefaultFallbackMatchesScalar)
{
    CountedSource a(1000), b(1000);
    std::vector<TraceRecord> scalar = drainScalar(a);
    std::vector<TraceRecord> batched = drainBatched(b, 37);
    EXPECT_EQ(scalar, batched);
    EXPECT_EQ(scalar.size(), 1000u);

    // A drained source keeps returning 0, not garbage.
    TraceRecord rec;
    EXPECT_EQ(b.nextBatch(&rec, 1), 0u);
}

TEST(NextBatch, SyntheticMatchesScalarForAllWorkloads)
{
    for (const std::string name :
         {"gcc", "vortex", "ijpeg", "stream", "chase", "uniform"}) {
        auto scalarSrc = makeWorkload(name, 42);
        auto batchSrc = makeWorkload(name, 42);
        std::vector<TraceRecord> scalar(5000), batched(5000);
        for (auto &rec : scalar)
            ASSERT_TRUE(scalarSrc->next(rec));
        // Odd chunk size so batches never align with anything.
        std::size_t filled = 0;
        while (filled < batched.size()) {
            std::size_t want = std::min<std::size_t>(
                997, batched.size() - filled);
            ASSERT_EQ(batchSrc->nextBatch(batched.data() + filled, want),
                      want);
            filled += want;
        }
        EXPECT_EQ(scalar, batched) << name;
    }
}

TEST(NextBatch, TraceFileReaderMatchesScalar)
{
    TempFile file;
    // More records than one 4096-record I/O buffer, plus a remainder,
    // so batches cross refill boundaries.
    const Counter total = 2 * 4096 + 37;
    {
        TraceFileWriter writer(file.path());
        CountedSource src(total);
        TraceRecord rec;
        while (src.next(rec))
            writer.write(rec);
        writer.close();
    }

    TraceFileReader scalarReader(file.path());
    std::vector<TraceRecord> scalar = drainScalar(scalarReader);
    ASSERT_EQ(scalar.size(), total);

    TraceFileReader batchReader(file.path());
    std::vector<TraceRecord> batched = drainBatched(batchReader, 1000);
    EXPECT_EQ(scalar, batched);
    EXPECT_EQ(batchReader.recordsRead(), total);

    // rewind() resets the batch path too.
    batchReader.rewind();
    std::vector<TraceRecord> again = drainBatched(batchReader, 512);
    EXPECT_EQ(scalar, again);
}

TEST(NextBatch, TraceFileReaderCorruptOpThrowsAtExactRecord)
{
    TempFile file;
    const Counter total = 100;
    {
        TraceFileWriter writer(file.path());
        CountedSource src(total);
        TraceRecord rec;
        while (src.next(rec))
            writer.write(rec);
        writer.close();
    }
    // Corrupt record 60's op byte in place.
    {
        std::FILE *f = std::fopen(file.path().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        long off = static_cast<long>(kTraceHeaderBytes +
                                     60 * kTraceRecordBytes + 8);
        ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
        unsigned char bad = 9;
        ASSERT_EQ(std::fwrite(&bad, 1, 1, f), 1u);
        std::fclose(f);
    }

    TraceFileReader reader(file.path());
    std::vector<TraceRecord> buf(total);
    // The good prefix decodes; the corrupt record throws with its
    // exact index, matching the scalar reader.
    EXPECT_EQ(reader.nextBatch(buf.data(), 50), 50u);
    try {
        reader.nextBatch(buf.data() + 50, 50);
        FAIL() << "corrupt record did not throw";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.error().code, ErrorCode::ParseError);
        EXPECT_NE(e.error().message.find("record 60"), std::string::npos)
            << e.error().message;
    }
    EXPECT_EQ(reader.recordsRead(), 60u);
}

TEST(NextBatch, InterleavedMatchesScalarIncludingExhaustion)
{
    // Shared recordings so both instances see identical streams; the
    // shorter source exercises mid-quantum exhaustion and the rotation
    // over a dry source.
    auto gcc = makeWorkload("gcc", 7);
    auto ijpeg = makeWorkload("ijpeg", 7);
    auto recA = std::make_shared<const RecordedTrace>(
        RecordedTrace::record(*gcc, 500, "a"));
    auto recB = std::make_shared<const RecordedTrace>(
        RecordedTrace::record(*ijpeg, 213, "b"));

    ReplayCursor sa(recA), sb(recB);
    InterleavedTrace scalarMix({&sa, &sb}, 17);
    std::vector<TraceRecord> scalar = drainScalar(scalarMix);
    EXPECT_EQ(scalar.size(), 713u);

    ReplayCursor ba(recA), bb(recB);
    InterleavedTrace batchMix({&ba, &bb}, 17);
    std::vector<TraceRecord> batched = drainBatched(batchMix, 23);
    EXPECT_EQ(scalar, batched);
}

TEST(RecordedTrace, RecordReplayRewind)
{
    auto src = makeWorkload("gcc", 3);
    RecordedTrace rec = RecordedTrace::record(*src, 1234, src->name());
    EXPECT_EQ(rec.size(), 1234u);
    EXPECT_EQ(rec.bytes(), 1234 * sizeof(TraceRecord));
    EXPECT_EQ(rec.name(), "gcc-like");
    EXPECT_FALSE(rec.empty());

    // A replay matches a fresh generator record-for-record.
    auto fresh = makeWorkload("gcc", 3);
    ReplayCursor cursor(
        std::make_shared<const RecordedTrace>(std::move(rec)));
    TraceRecord a, b;
    for (int i = 0; i < 1234; ++i) {
        ASSERT_TRUE(fresh->next(a));
        ASSERT_TRUE(cursor.next(b));
        ASSERT_EQ(a, b) << "record " << i;
    }
    // Exhaustion, then rewind restarts from the first record.
    EXPECT_FALSE(cursor.next(b));
    EXPECT_EQ(cursor.nextBatch(&b, 1), 0u);
    cursor.rewind();
    ASSERT_TRUE(cursor.next(b));
    EXPECT_EQ(b, cursor.trace().at(0));

    // A bounded source yields a short recording, not an error.
    CountedSource short_src(10);
    RecordedTrace short_rec = RecordedTrace::record(short_src, 100);
    EXPECT_EQ(short_rec.size(), 10u);
}

TEST(RecordedTrace, LendBatchMatchesNextBatchZeroCopy)
{
    auto src = makeWorkload("gcc", 5);
    auto rec = std::make_shared<const RecordedTrace>(
        RecordedTrace::record(*src, 500, src->name()));

    // Sources without contiguous storage decline to lend.
    CountedSource counted(10);
    std::size_t got = 99;
    EXPECT_EQ(counted.lendBatch(4, got), nullptr);
    EXPECT_EQ(got, 0u);

    // The lent pointers walk the recording itself — same records as
    // nextBatch(), no copy — and exhaustion yields got == 0.
    ReplayCursor lender(rec), copier(rec);
    std::vector<TraceRecord> buf(96);
    std::size_t pos = 0;
    while (true) {
        const TraceRecord *p = lender.lendBatch(96, got);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p, rec->records().data() + pos);
        ASSERT_EQ(copier.nextBatch(buf.data(), 96), got);
        for (std::size_t i = 0; i < got; ++i)
            ASSERT_EQ(p[i], buf[i]) << "record " << pos + i;
        pos += got;
        if (got < 96)
            break;
    }
    EXPECT_EQ(pos, 500u);
    EXPECT_EQ(lender.lendBatch(96, got), rec->records().data() + 500);
    EXPECT_EQ(got, 0u);
}

TEST(TraceCache, SharesOneRecordingPerKey)
{
    TraceCache cache(64u << 20);
    auto first = cache.acquire("gcc", 11, 1000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->size(), 1000u);
    EXPECT_EQ(first->name(), "gcc-like");

    auto second = cache.acquire("gcc", 11, 1000);
    EXPECT_EQ(first.get(), second.get()); // the same buffer, shared

    // Different seed, count, or workload are distinct recordings.
    auto other = cache.acquire("gcc", 12, 1000);
    EXPECT_NE(first.get(), other.get());

    TraceCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_EQ(stats.bytes, 2 * 1000 * sizeof(TraceRecord));
}

TEST(TraceCache, OverBudgetFallsBackToNullptr)
{
    // Budget fits one 1000-record trace but not two.
    TraceCache cache(1500 * sizeof(TraceRecord));
    auto first = cache.acquire("gcc", 1, 1000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.acquire("vortex", 1, 1000), nullptr);
    // The cached entry is still served.
    EXPECT_EQ(cache.acquire("gcc", 1, 1000).get(), first.get());

    TraceCacheStats stats = cache.stats();
    EXPECT_EQ(stats.fallbacks, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.bytes, 1000 * sizeof(TraceRecord));
}

SimConfig
batchTestConfig(SystemKind kind)
{
    SimConfig cfg;
    cfg.kind = kind;
    cfg.l1 = CacheParams{16_KiB, 32};
    cfg.l2 = CacheParams{1_MiB, 64};
    cfg.seed = 777;
    // Prime interval so context switches land mid-batch for any
    // power-of-two-ish batch size.
    cfg.ctxSwitchInterval = 997;
    return cfg;
}

/** Everything one observed run produced, in comparable form. */
struct ObservedRun
{
    std::string results;
    std::vector<TraceEvent> events;
    std::string intervals;
};

ObservedRun
observedRun(SystemKind kind, std::size_t batch)
{
    CollectingSink sink;
    IntervalSampler sampler(1000);
    RunHooks hooks;
    hooks.sink = &sink;
    hooks.sampler = &sampler;
    hooks.batch = batch;
    Results r = runOnce(batchTestConfig(kind), "gcc", 20000, 5000, hooks);
    return {r.serialize().dump(), sink.events(),
            intervalsToJson(sampler.intervals()).dump()};
}

TEST(BatchedSimulator, BitIdenticalToScalarForAllSystems)
{
    for (SystemKind kind :
         {SystemKind::Ultrix, SystemKind::Mach, SystemKind::Intel,
          SystemKind::Parisc, SystemKind::Notlb, SystemKind::Base,
          SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur}) {
        ObservedRun scalar = observedRun(kind, 1);
        // 256 divides neither the 997-instruction quantum nor the
        // 1000-instruction sampling interval, so switches and interval
        // boundaries land mid-batch.
        ObservedRun batched = observedRun(kind, 256);

        EXPECT_EQ(scalar.results, batched.results) << kindName(kind);
        EXPECT_EQ(scalar.intervals, batched.intervals) << kindName(kind);
        ASSERT_EQ(scalar.events.size(), batched.events.size())
            << kindName(kind);
        for (std::size_t i = 0; i < scalar.events.size(); ++i) {
            const TraceEvent &a = scalar.events[i];
            const TraceEvent &b = batched.events[i];
            ASSERT_TRUE(a.kind == b.kind && a.level == b.level &&
                        a.instr == b.instr && a.vaddr == b.vaddr &&
                        a.vpn == b.vpn && a.cycles == b.cycles)
                << kindName(kind) << " event " << i;
        }
    }
}

TEST(BatchedSimulator, UnobservedResultsIdenticalAcrossBatchSizes)
{
    for (SystemKind kind : {SystemKind::Ultrix, SystemKind::HwMips}) {
        std::string baseline;
        for (std::size_t batch : {std::size_t{1}, std::size_t{97},
                                  Simulator::kDefaultBatch}) {
            RunHooks hooks;
            hooks.batch = batch;
            Results r = runOnce(batchTestConfig(kind), "vortex", 30000,
                                3000, hooks);
            std::string dump = r.serialize().dump();
            if (baseline.empty())
                baseline = dump;
            else
                EXPECT_EQ(baseline, dump)
                    << kindName(kind) << " batch " << batch;
        }
    }
}

TEST(BatchedSimulator, ReplayedTraceMatchesGeneratedTrace)
{
    // A cell fed by a ReplayCursor over a recording must be
    // indistinguishable from one that generated the workload itself —
    // this is the contract the sweep trace cache relies on.
    const Counter instrs = 20000, warmup = 5000;
    RunHooks genHooks;
    Results generated =
        runOnce(batchTestConfig(SystemKind::Ultrix), "gcc", instrs,
                warmup, genHooks);

    TraceCache cache(64u << 20);
    RunHooks replayHooks;
    replayHooks.makeTrace = [&]() -> NamedTraceSource {
        auto rec = cache.acquire("gcc", 777, instrs + warmup);
        EXPECT_NE(rec, nullptr);
        std::string name = rec->name();
        return {std::make_unique<ReplayCursor>(std::move(rec)),
                std::move(name)};
    };
    Results replayed =
        runOnce(batchTestConfig(SystemKind::Ultrix), "gcc", instrs,
                warmup, replayHooks);

    EXPECT_EQ(generated.serialize().dump(), replayed.serialize().dump());
}

TEST(SweepTraceCache, CsvByteIdenticalCacheOnVsOff)
{
    SweepSpec spec;
    SimConfig base;
    base.l1 = CacheParams{16_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};
    base.seed = 777;
    spec.base(base)
        .systems({SystemKind::Ultrix, SystemKind::Mach})
        .workloads({"gcc", "ijpeg"})
        .l1Sizes({8_KiB, 32_KiB})
        .instructions(15000)
        .warmup(3000);

    std::ostringstream cached, uncached, scalar;
    {
        SweepRunner runner(2);
        runner.traceCache(64); // cache on, parallel, batched
        runner.run(spec).writeCsv(cached);
    }
    {
        SweepRunner runner(1);
        runner.traceCache(0); // cache off: every cell regenerates
        runner.run(spec).writeCsv(uncached);
    }
    {
        SweepRunner runner(1);
        runner.traceCache(0);
        runner.batchSize(1); // the scalar reference loop
        runner.run(spec).writeCsv(scalar);
    }
    EXPECT_EQ(cached.str(), uncached.str());
    EXPECT_EQ(cached.str(), scalar.str());
    EXPECT_FALSE(cached.str().empty());
}

TEST(SweepTraceCache, ComposesWithFaultInjection)
{
    // wrapTrace applies on top of whatever makeTrace returns, so a
    // fault campaign must hit the exact same records — and fail the
    // exact same cells — whether cells replay the shared recording or
    // regenerate their traces.
    SweepSpec spec;
    SimConfig base;
    base.seed = 777;
    spec.base(base)
        .systems({SystemKind::Ultrix})
        .l1Sizes({8_KiB, 16_KiB})
        .seeds(2)
        .instructions(10000)
        .warmup(2000);
    FaultSpec faults =
        FaultSpec::parse("corrupt=0.00005,throw=0.0001,seed=9")
            .orThrow();

    std::ostringstream cached, uncached;
    SweepRunner a(1), b(1);
    a.traceCache(64).injectFaults(faults);
    a.run(spec).writeCsv(cached);
    b.traceCache(0).injectFaults(faults);
    b.run(spec).writeCsv(uncached);
    EXPECT_EQ(cached.str(), uncached.str());
}

} // anonymous namespace
} // namespace vmsim
