/**
 * @file
 * Unit and property tests for the Cache model: geometry validation,
 * direct-mapped conflict behavior, associativity, replacement, and
 * parameterized sweeps over the paper's cache shapes.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/units.hh"
#include "mem/cache.hh"

namespace vmsim
{
namespace
{

CacheParams
params(std::uint64_t size, unsigned line, unsigned assoc = 1)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineSize = line;
    p.assoc = assoc;
    return p;
}

TEST(CacheParams, NumSets)
{
    EXPECT_EQ(params(1_KiB, 16).numSets(), 64u);
    EXPECT_EQ(params(64_KiB, 64).numSets(), 1024u);
    EXPECT_EQ(params(64_KiB, 64, 4).numSets(), 256u);
}

TEST(CacheParams, ToString)
{
    EXPECT_EQ(params(64_KiB, 32).toString(), "64KB/32B/direct");
    EXPECT_EQ(params(2_MiB, 128).toString(), "2MB/128B/direct");
    EXPECT_EQ(params(64_KiB, 32, 4).toString(), "64KB/32B/4way");
}

TEST(Cache, InvalidGeometryRejected)
{
    setQuiet(true);
    EXPECT_THROW(Cache(params(0, 32)), FatalError);
    EXPECT_THROW(Cache(params(3000, 32)), FatalError);
    EXPECT_THROW(Cache(params(1_KiB, 24)), FatalError);
    EXPECT_THROW(Cache(params(1_KiB, 2)), FatalError);
    EXPECT_THROW(Cache(params(1_KiB, 32, 0)), FatalError);
    // size not divisible by line * assoc
    EXPECT_THROW(Cache(params(1_KiB, 512, 4)), FatalError);
    setQuiet(false);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(params(1_KiB, 32));
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101f)); // same 32B line
    EXPECT_FALSE(c.access(0x1020)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, DirectMappedConflict)
{
    // 1 KB direct-mapped, 32 B lines -> 32 sets; addresses 1 KB apart
    // with equal offsets collide.
    Cache c(params(1_KiB, 32));
    EXPECT_FALSE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0400)); // evicts 0x0000
    EXPECT_FALSE(c.access(0x0000)); // conflict miss
    EXPECT_FALSE(c.access(0x0400));
    EXPECT_EQ(c.misses(), 4u);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(params(1_KiB, 32));
    for (Addr a = 0; a < 1_KiB; a += 32)
        EXPECT_FALSE(c.access(a));
    // Entire cache now resident.
    for (Addr a = 0; a < 1_KiB; a += 32)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.validLines(), 32u);
}

TEST(Cache, TwoWayAvoidsPairConflict)
{
    // Two addresses mapping to the same set coexist in a 2-way cache.
    Cache c(params(1_KiB, 32, 2));
    EXPECT_FALSE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0400));
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_TRUE(c.access(0x0400));
}

TEST(Cache, LruEviction)
{
    // 2-way set: fill both ways, touch way A, insert third line ->
    // way B (the LRU) must be evicted.
    CacheParams p = params(1_KiB, 32, 2);
    p.repl = CacheRepl::LRU;
    Cache c(p);
    c.access(0x0000); // A
    c.access(0x0400); // B
    c.access(0x0000); // touch A
    c.access(0x0800); // evicts B
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0400));
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(params(1_KiB, 32));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x40)); // still absent
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_EQ(c.accesses(), 1u); // probes don't count as accesses
}

TEST(Cache, InvalidateSingleLine)
{
    Cache c(params(1_KiB, 32));
    c.access(0x40);
    c.access(0x80);
    c.invalidate(0x40);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_TRUE(c.probe(0x80));
}

TEST(Cache, InvalidateAll)
{
    Cache c(params(1_KiB, 32));
    for (Addr a = 0; a < 512; a += 32)
        c.access(a);
    EXPECT_GT(c.validLines(), 0u);
    c.invalidateAll();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, LineAddr)
{
    Cache c(params(1_KiB, 64));
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(c.lineAddr(0x12340), 0x12340u);
    EXPECT_EQ(c.lineAddr(0x1237f), 0x12340u);
}

TEST(Cache, MissRate)
{
    Cache c(params(1_KiB, 32));
    EXPECT_EQ(c.missRate(), 0.0);
    c.access(0);
    c.access(0);
    c.access(0);
    c.access(0);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, RandomReplacementStaysWithinSet)
{
    CacheParams p = params(1_KiB, 32, 4);
    p.repl = CacheRepl::Random;
    Cache c(p, 99);
    // Fill one set (set index 0) with 4 ways, then keep inserting
    // conflicting lines; lines in other sets must stay resident.
    c.access(0x2000); // a different set? no: 0x2000 % 256... compute:
    // 1KB/32B/4way -> 8 sets, set bits = addr[7:5]. 0x2000 -> set 0.
    c.access(0x0020); // set 1
    for (int i = 0; i < 32; ++i)
        c.access(0x0000 + std::uint64_t{0x100} * i); // all set 0
    EXPECT_TRUE(c.probe(0x0020)); // set 1 untouched
}

TEST(Cache, FullCacheWorkingSetHitsAfterWarmup)
{
    Cache c(params(8_KiB, 64));
    for (int lap = 0; lap < 3; ++lap) {
        Counter misses_before = c.misses();
        for (Addr a = 0; a < 8_KiB; a += 64)
            c.access(a);
        if (lap > 0) {
            EXPECT_EQ(c.misses(), misses_before) << "lap " << lap;
        }
    }
}

TEST(Cache, OversizedWorkingSetAlwaysMisses)
{
    // Cyclic sweep of 2x the cache through a direct-mapped cache:
    // every access evicts the line needed one lap later.
    Cache c(params(1_KiB, 32));
    for (int lap = 0; lap < 3; ++lap)
        for (Addr a = 0; a < 2_KiB; a += 32)
            c.access(a);
    EXPECT_EQ(c.misses(), c.accesses());
}

// Property sweep over the paper's cache geometry grid: invariants that
// must hold for every L1 shape in Table 1.
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometryTest, WorkingSetResidency)
{
    auto [size, line] = GetParam();
    Cache c(params(size, line));
    // One full pass installs every line; the second pass is all hits.
    for (Addr a = 0; a < size; a += line)
        EXPECT_FALSE(c.access(a));
    for (Addr a = 0; a < size; a += line)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.validLines(), size / line);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST_P(CacheGeometryTest, TagDisambiguation)
{
    auto [size, line] = GetParam();
    Cache c(params(size, line));
    // Two addresses that differ only above the index bits must not be
    // confused for one another.
    Addr a = 0x100;
    Addr b = a + size;
    c.access(a);
    EXPECT_FALSE(c.probe(b));
    c.access(b);
    EXPECT_FALSE(c.probe(a));
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, CacheGeometryTest,
    ::testing::Combine(::testing::Values(1_KiB, 2_KiB, 4_KiB, 8_KiB,
                                         16_KiB, 32_KiB, 64_KiB, 128_KiB),
                       ::testing::Values(16u, 32u, 64u, 128u)));

// Associativity property: for a fixed working set that fits, higher
// associativity never increases misses under LRU.
class CacheAssocTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CacheAssocTest, FittingWorkingSetEventuallyAllHits)
{
    unsigned assoc = GetParam();
    CacheParams p = params(4_KiB, 32, assoc);
    p.repl = CacheRepl::LRU;
    Cache c(p);
    for (int lap = 0; lap < 2; ++lap)
        for (Addr a = 0; a < 4_KiB; a += 32)
            c.access(a);
    // Second lap: no new misses.
    EXPECT_EQ(c.misses(), 4_KiB / 32);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocTest,
                         ::testing::Values(1u, 2u, 4u, 8u));


TEST(Cache, RandomReplacementDeterministicPerSeed)
{
    CacheParams p = params(1_KiB, 32, 4);
    p.repl = CacheRepl::Random;
    Cache a(p, 11), b(p, 11), c(p, 12);
    int diverged = 0;
    for (Addr addr = 0; addr < 64_KiB; addr += 32) {
        a.access(addr % 8_KiB);
        b.access(addr % 8_KiB);
        c.access(addr % 8_KiB);
        if (a.probe(addr % 8_KiB) != c.probe(addr % 8_KiB))
            ++diverged;
        ASSERT_EQ(a.probe(addr % 8_KiB), b.probe(addr % 8_KiB));
    }
    EXPECT_EQ(a.misses(), b.misses());
}

TEST(Cache, ValidLinesNeverExceedsCapacity)
{
    Cache c(params(2_KiB, 64, 2));
    Random rng(5);
    for (int i = 0; i < 5000; ++i)
        c.access(rng.uniform(1_MiB));
    EXPECT_LE(c.validLines(), 2_KiB / 64);
    EXPECT_EQ(c.validLines(), 2_KiB / 64); // saturated under pressure
}

TEST(Cache, InvalidateMissingLineIsHarmless)
{
    Cache c(params(1_KiB, 32));
    c.access(0x40);
    c.invalidate(0x9999040); // same set, different tag: not present
    EXPECT_TRUE(c.probe(0x40));
}


TEST(CacheParams, ToStringSubKilobyteAndOddSizes)
{
    // Regression: sizes below 1 KB rendered as "0KB" and non-multiples
    // truncated (1536 B -> "1KB"); render exact bytes instead.
    EXPECT_EQ(params(512, 16).toString(), "512B/16B/direct");
    CacheParams odd{1536, 16};
    EXPECT_EQ(odd.toString(), "1536B/16B/direct");
    EXPECT_EQ(params(1_KiB, 16).toString(), "1KB/16B/direct");
}

} // anonymous namespace
} // namespace vmsim
