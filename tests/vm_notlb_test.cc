/**
 * @file
 * Tests for NotlbVm: software-managed caches with no TLB — handlers
 * trigger on L2 misses (not TLB misses), nested handling when the PTE
 * reference itself misses the L2, and the absence of any TLB.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "os/notlb_vm.hh"

namespace vmsim
{
namespace
{

struct Fixture
{
    Fixture()
        : mem(CacheParams{32_KiB, 32}, CacheParams{1_MiB, 64}),
          pm(8_MiB, 12), vm(mem, pm)
    {}

    MemSystem mem;
    PhysMem pm;
    NotlbVm vm;
};

TEST(NotlbVm, HasNoTlb)
{
    Fixture f;
    EXPECT_EQ(f.vm.itlb(), nullptr);
    EXPECT_EQ(f.vm.dtlb(), nullptr);
}

TEST(NotlbVm, ColdL2MissRunsHandler)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 1u);
    EXPECT_EQ(s.uhandlerInstrs, 10u);
    EXPECT_EQ(s.interrupts, 2u); // PTE ref also missed L2 (cold)
    EXPECT_EQ(s.rhandlerCalls, 1u);
    EXPECT_EQ(s.rhandlerInstrs, 20u);
    EXPECT_EQ(s.pteLoads, 2u);
}

TEST(NotlbVm, CacheHitCostsNothing)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    VmStats before = f.vm.vmStats();
    f.vm.dataRef(Access{0x10000000, 0, false}); // L1 hit now
    EXPECT_EQ(f.vm.vmStats().interrupts, before.interrupts);
}

TEST(NotlbVm, L2HitAfterL1EvictionCostsNothing)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // Conflict away the L1 line (32 KB direct-mapped L1), keeping L2.
    f.vm.dataRef(Access{0x10008000, 0, false});
    VmStats before = f.vm.vmStats();
    // L1 miss, L2 hit: no handler — the trigger is the L2 miss only.
    f.vm.dataRef(Access{0x10000000, 0, false});
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, before.uhandlerCalls);
}

TEST(NotlbVm, NestedHandlerOnlyWhenPteMissesL2)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false}); // cold: nested
    // Another page in the same 4 MB segment: its PTE shares the same
    // page-group line region (adjacent 4-byte PTEs) so the PTE ref
    // hits the now-warm cache.
    f.vm.dataRef(Access{0x10001000, 0, false});
    const VmStats &s = f.vm.vmStats();
    EXPECT_EQ(s.uhandlerCalls, 2u);
    EXPECT_EQ(s.rhandlerCalls, 1u);
}

TEST(NotlbVm, InstructionMissesAlsoHandled)
{
    Fixture f;
    f.vm.instRef(Access{0x00400000});
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, 1u);
    // The next sequential fetch hits the freshly filled I-line.
    f.vm.instRef(Access{0x00400004});
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, 1u);
}

TEST(NotlbVm, HandlerCodeCannotRecurse)
{
    // Handler instruction fetches are in unmapped space: even though
    // they miss the L2 I-cache cold, they must not invoke handlers.
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    // Exactly the events of one (nested) miss — nothing more.
    EXPECT_EQ(f.vm.vmStats().uhandlerCalls, 1u);
    EXPECT_EQ(f.vm.vmStats().rhandlerCalls, 1u);
    EXPECT_GT(f.mem.stats().instOf(AccessClass::HandlerFetch).l2Misses,
              0u);
}

TEST(NotlbVm, PteTrafficUsesDisjunctTable)
{
    Fixture f;
    f.vm.dataRef(Access{0x10000000, 0, false});
    Addr upte = f.vm.pageTable().uptEntryAddr(0x10000000 >> 12);
    EXPECT_TRUE(f.mem.l1d().probe(upte));
}

TEST(NotlbVm, SensitiveToCacheSize)
{
    // The paper: NOTLB is much more sensitive to cache organization.
    // A tiny L2 must produce many more handler runs than a large one
    // for a working set between the two sizes.
    PhysMem pm_small(8_MiB, 12), pm_big(8_MiB, 12);
    MemSystem small(CacheParams{8_KiB, 32}, CacheParams{64_KiB, 64});
    MemSystem big(CacheParams{8_KiB, 32}, CacheParams{2_MiB, 64});
    NotlbVm vm_small(small, pm_small);
    NotlbVm vm_big(big, pm_big);
    // Cyclic sweep over 256 KB: fits the 2 MB L2, thrashes the 64 KB.
    for (int lap = 0; lap < 4; ++lap)
        for (Addr a = 0; a < 256_KiB; a += 64) {
            vm_small.dataRef(Access{0x10000000 + a, 0, false});
            vm_big.dataRef(Access{0x10000000 + a, 0, false});
        }
    EXPECT_GT(vm_small.vmStats().uhandlerCalls,
              3 * vm_big.vmStats().uhandlerCalls);
}

TEST(NotlbVm, Name)
{
    Fixture f;
    EXPECT_EQ(f.vm.name(), "NOTLB");
}

} // anonymous namespace
} // namespace vmsim
