/**
 * @file
 * Tests for the PA-RISC hashed/inverted page table (paper Fig. 4):
 * table sizing from physical memory, the Huck & Hays hash, collision
 * chains in the CRT, chain-length statistics against the paper's
 * expectations, and 16-byte PTE geometry.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/units.hh"
#include "mem/phys_mem.hh"
#include "pt/hashed_page_table.hh"

namespace vmsim
{
namespace
{

TEST(HashedPageTable, PaperSizing)
{
    // 8 MB physical = 2048 frames; 2:1 ratio -> 4096 entries.
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    EXPECT_EQ(pt.numBuckets(), 4096u);
}

TEST(HashedPageTable, RatioScalesBuckets)
{
    PhysMem pm1(8_MiB, 12), pm2(8_MiB, 12), pm4(8_MiB, 12);
    EXPECT_EQ(HashedPageTable(pm1, 1).numBuckets(), 2048u);
    EXPECT_EQ(HashedPageTable(pm2, 2).numBuckets(), 4096u);
    EXPECT_EQ(HashedPageTable(pm4, 4).numBuckets(), 8192u);
}

TEST(HashedPageTable, HashInRange)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    for (Vpn v = 0; v < 100000; v += 97)
        EXPECT_LT(pt.hashOf(v), pt.numBuckets());
}

TEST(HashedPageTable, HashIsDeterministic)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    EXPECT_EQ(pt.hashOf(12345), pt.hashOf(12345));
}

TEST(HashedPageTable, HashSpreads)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    // Sequential VPNs should spread over many buckets (the XOR hash
    // keeps low bits distinct for dense VPN ranges).
    std::set<std::uint64_t> buckets;
    for (Vpn v = 0; v < 1024; ++v)
        buckets.insert(pt.hashOf(v));
    EXPECT_GT(buckets.size(), 1000u);
}

TEST(HashedPageTable, FirstWalkInsertsEntry)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    EXPECT_EQ(pt.entryCount(), 0u);
    unsigned depth = pt.walk(77, out);
    EXPECT_EQ(depth, 1u);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(pt.entryCount(), 1u);
    EXPECT_TRUE(pm.isMapped(77));
}

TEST(HashedPageTable, RepeatWalkFindsSameEntry)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> a, b;
    pt.walk(77, a);
    pt.walk(77, b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(pt.entryCount(), 1u);
}

TEST(HashedPageTable, EntriesLiveInPhysicalWindow)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    pt.walk(123, out);
    for (Addr a : out) {
        EXPECT_GE(a, kPhysWindowBase);
        EXPECT_LT(a, kPhysWindowBase + pm.sizeBytes());
    }
}

TEST(HashedPageTable, EntriesAre16ByteAligned)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    for (Vpn v = 0; v < 200; ++v)
        pt.walk(v * 31 + 7, out);
    for (Addr a : out)
        EXPECT_EQ(a % kHashedPteSize, 0u);
}

TEST(HashedPageTable, CollisionsChainThroughCrt)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    // Find two VPNs with the same hash.
    Vpn a = 5;
    Vpn b = a;
    for (Vpn v = a + 1; v < 1u << 20; ++v) {
        if (pt.hashOf(v) == pt.hashOf(a)) {
            b = v;
            break;
        }
    }
    ASSERT_NE(a, b) << "no collision found in 1M VPNs";

    std::vector<Addr> wa, wb;
    pt.walk(a, wa);
    EXPECT_EQ(wa.size(), 1u);
    pt.walk(b, wb);
    // The collider walks the chain: head first, then its own entry.
    EXPECT_EQ(wb.size(), 2u);
    EXPECT_EQ(wb[0], wa[0]);
    EXPECT_NE(wb[1], wb[0]);
    EXPECT_EQ(pt.crtEntries(), 1u);
}

TEST(HashedPageTable, AverageChainLengthMatchesPaper)
{
    // The paper: a 2:1 ratio "should result in an average
    // collision-chain length of 1.25 entries"; gcc measured ~1.3.
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    Random rng(7);
    std::set<Vpn> touched;
    // Touch 2048 distinct pages (a full physical memory's worth).
    while (touched.size() < 2048) {
        Vpn v = rng.uniform(500000);
        touched.insert(v);
        out.clear();
        pt.walk(v, out);
    }
    EXPECT_EQ(pt.entryCount(), 2048u);
    double avg = pt.avgChainLength();
    EXPECT_GT(avg, 1.05);
    EXPECT_LT(avg, 1.45);
}

TEST(HashedPageTable, LoadFactorRaisesChainLength)
{
    // Ablation invariant: fewer buckets per frame -> longer chains.
    std::vector<double> avgs;
    for (unsigned ratio : {1u, 2u, 4u}) {
        PhysMem pm(8_MiB, 12);
        HashedPageTable pt(pm, ratio);
        std::vector<Addr> out;
        Random rng(7);
        std::set<Vpn> touched;
        while (touched.size() < 2048) {
            Vpn v = rng.uniform(500000);
            touched.insert(v);
            out.clear();
            pt.walk(v, out);
        }
        avgs.push_back(pt.avgChainLength());
    }
    EXPECT_GT(avgs[0], avgs[1]);
    EXPECT_GT(avgs[1], avgs[2]);
}

TEST(HashedPageTable, SearchDepthStatistics)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    for (Vpn v = 0; v < 100; ++v) {
        out.clear();
        pt.walk(v * 1234567 % 500000, out);
    }
    EXPECT_EQ(pt.searchDepth().count(), 100u);
    EXPECT_GE(pt.searchDepth().min(), 1.0);
}

TEST(HashedPageTable, WalkAppendsWithoutClearing)
{
    PhysMem pm(8_MiB, 12);
    HashedPageTable pt(pm, 2);
    std::vector<Addr> out;
    pt.walk(1, out);
    pt.walk(2, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(HashedPageTable, ZeroRatioRejected)
{
    setQuiet(true);
    PhysMem pm(8_MiB, 12);
    EXPECT_THROW(HashedPageTable(pm, 0), FatalError);
    setQuiet(false);
}

} // anonymous namespace
} // namespace vmsim
