/**
 * @file
 * Tests for the structured error layer: Error/ErrorCode formatting,
 * Status and Expected<T> semantics, errno and exception conversion,
 * and the VmsimError bridge to the legacy FatalError hierarchy.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <stdexcept>
#include <string>

#include "base/error.hh"
#include "base/logging.hh"

namespace vmsim
{
namespace
{

TEST(ErrorCodeName, CoversEveryCode)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidConfig),
                 "invalid_config");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::ParseError), "parse_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::Truncated), "truncated");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unsupported), "unsupported");
    EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
    EXPECT_STREQ(errorCodeName(ErrorCode::Canceled), "canceled");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unknown), "unknown");
}

TEST(Error, ToStringIncludesCodeAndContext)
{
    Error e = makeError(ErrorCode::IoError, "foo.trace",
                        "cannot read the file");
    std::string s = e.toString();
    EXPECT_NE(s.find("[io_error]"), std::string::npos) << s;
    EXPECT_NE(s.find("cannot read the file"), std::string::npos) << s;
    EXPECT_NE(s.find("(context: foo.trace)"), std::string::npos) << s;
}

TEST(Error, ToStringOmitsContextAlreadyInMessage)
{
    Error e = makeError(ErrorCode::ParseError, "foo.trace",
                        "cannot parse 'foo.trace'");
    EXPECT_EQ(e.toString().find("context:"), std::string::npos);
}

TEST(Error, MakeErrorConcatenatesStreamableParts)
{
    Error e = makeError(ErrorCode::Truncated, "t", "got ", 7,
                        " bytes, need ", 16);
    EXPECT_EQ(e.message, "got 7 bytes, need 16");
    EXPECT_EQ(e.code, ErrorCode::Truncated);
    EXPECT_FALSE(e.transient);
}

TEST(Error, ErrnoErrorCapturesStrerror)
{
    errno = ENOENT;
    Error e = errnoError("missing.trace", "cannot open");
    EXPECT_EQ(e.code, ErrorCode::IoError);
    EXPECT_EQ(e.context, "missing.trace");
    EXPECT_NE(e.message.find("cannot open"), std::string::npos);
    EXPECT_NE(e.message.find("errno 2"), std::string::npos) << e.message;
    EXPECT_FALSE(e.transient);
}

TEST(Error, ErrnoErrorMarksInterruptionsTransient)
{
    errno = EINTR;
    EXPECT_TRUE(errnoError("x", "read interrupted").transient);
    errno = EAGAIN;
    EXPECT_TRUE(errnoError("x", "would block").transient);
    errno = ENOSPC;
    EXPECT_FALSE(errnoError("x", "disk full").transient);
}

TEST(VmsimErrorTest, IsAFatalError)
{
    // Legacy EXPECT_THROW(..., FatalError) sites must keep passing
    // when the thrower migrates to structured errors.
    setQuiet(true);
    try {
        throwError(ErrorCode::InvalidConfig, "cfg.pageBits",
                   "pageBits must be positive");
        FAIL() << "throwError did not throw";
    } catch (const FatalError &e) {
        auto *ve = dynamic_cast<const VmsimError *>(&e);
        ASSERT_NE(ve, nullptr);
        EXPECT_EQ(ve->code(), ErrorCode::InvalidConfig);
        EXPECT_EQ(ve->error().context, "cfg.pageBits");
        EXPECT_NE(std::string(e.what()).find("pageBits"),
                  std::string::npos);
    }
    setQuiet(false);
}

TEST(ErrorFromException, PreservesVmsimError)
{
    Error in = makeError(ErrorCode::Timeout, "cell 3", "too slow");
    in.transient = false;
    Error out;
    try {
        throw VmsimError(in);
    } catch (...) {
        out = errorFromException(std::current_exception());
    }
    EXPECT_EQ(out.code, ErrorCode::Timeout);
    EXPECT_EQ(out.message, "too slow");
    EXPECT_EQ(out.context, "cell 3");
}

TEST(ErrorFromException, MapsLegacyAndForeignExceptions)
{
    auto convert = [](auto thrower) {
        try {
            thrower();
        } catch (...) {
            return errorFromException(std::current_exception());
        }
        return Error{};
    };

    setQuiet(true);
    Error p = convert([] { panic("broken invariant"); });
    EXPECT_EQ(p.code, ErrorCode::Internal);
    EXPECT_NE(p.message.find("broken invariant"), std::string::npos);

    Error f = convert([] { fatal("bad flag"); });
    EXPECT_EQ(f.code, ErrorCode::InvalidArgument);

    Error r = convert([] { throw std::runtime_error("oops"); });
    EXPECT_EQ(r.code, ErrorCode::Unknown);
    EXPECT_EQ(r.message, "oops");

    Error n = convert([] { throw 42; });
    EXPECT_EQ(n.code, ErrorCode::Unknown);
    setQuiet(false);
}

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_NO_THROW(s.orThrow());
}

TEST(StatusTest, FailureCarriesErrorAndThrows)
{
    Status s(makeError(ErrorCode::IoError, "f", "boom"));
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, ErrorCode::IoError);
    setQuiet(true);
    try {
        s.orThrow();
        FAIL() << "orThrow did not throw";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::IoError);
    }
    setQuiet(false);
}

TEST(StatusTest, ErrorOnSuccessPanics)
{
    setQuiet(true);
    Status s;
    EXPECT_THROW(s.error(), PanicError);
    setQuiet(false);
}

TEST(ExpectedTest, ValueRoundTrip)
{
    Expected<int> e(7);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value(), 7);
    EXPECT_EQ(e.valueOr(99), 7);
    EXPECT_EQ(e.orThrow(), 7);
}

TEST(ExpectedTest, ErrorAlternative)
{
    Expected<int> e(makeError(ErrorCode::ParseError, "x", "nope"));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, ErrorCode::ParseError);
    EXPECT_EQ(e.valueOr(99), 99);
    setQuiet(true);
    EXPECT_THROW(e.orThrow(), VmsimError);
    EXPECT_THROW(e.value(), PanicError);
    setQuiet(false);
}

TEST(ExpectedTest, MoveOnlyTypes)
{
    auto make = [](bool ok) -> Expected<std::unique_ptr<int>> {
        if (!ok)
            return makeError(ErrorCode::IoError, "p", "no");
        return std::make_unique<int>(5);
    };
    auto good = make(true);
    ASSERT_TRUE(good.ok());
    std::unique_ptr<int> p = std::move(good).orThrow();
    EXPECT_EQ(*p, 5);
    EXPECT_FALSE(make(false).ok());
}

} // anonymous namespace
} // namespace vmsim
