/**
 * @file
 * Tests for the deterministic fault-injection subsystem and its
 * integration with the sweep engine: spec parsing, seeded decision
 * streams, the trace/sink wrappers, per-cell failure isolation,
 * transient-retry semantics, and the wall-clock watchdog.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/error.hh"
#include "base/logging.hh"
#include "base/units.hh"
#include "core/sweep.hh"
#include "fault/fault.hh"
#include "obs/event.hh"
#include "trace/trace.hh"

namespace vmsim
{
namespace
{

/** Unbounded counting trace: pc advances by 4, no data refs. */
class CountingSource : public TraceSource
{
  public:
    bool
    next(TraceRecord &rec) override
    {
        rec = TraceRecord{pc_, 0, MemOp::None};
        pc_ += 4;
        return true;
    }

  private:
    std::uint32_t pc_ = 0x1000;
};

SweepSpec
smallSpec()
{
    SimConfig base;
    base.l1 = CacheParams{4_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};
    SweepSpec spec;
    spec.base(base)
        .systems({SystemKind::Ultrix, SystemKind::Intel})
        .workloads({"gcc"})
        .l1Sizes({4_KiB, 16_KiB})
        .instructions(20'000)
        .warmup(2'000);
    return spec;
}

// -------------------------------------------------------------- FaultSpec

TEST(FaultSpec, EmptyStringIsInactive)
{
    auto spec = FaultSpec::parse("");
    ASSERT_TRUE(spec.ok());
    EXPECT_FALSE(spec.value().any());
}

TEST(FaultSpec, ParsesEveryKey)
{
    auto e = FaultSpec::parse(
        "corrupt=0.01,truncate=0.02,throw=0.03,writefail=0.04,seed=9");
    ASSERT_TRUE(e.ok());
    const FaultSpec &s = e.value();
    EXPECT_DOUBLE_EQ(s.corrupt, 0.01);
    EXPECT_DOUBLE_EQ(s.truncate, 0.02);
    EXPECT_DOUBLE_EQ(s.throwProb, 0.03);
    EXPECT_DOUBLE_EQ(s.writeFail, 0.04);
    EXPECT_EQ(s.seed, 9u);
    EXPECT_TRUE(s.any());
}

TEST(FaultSpec, ToStringRoundTrips)
{
    auto e = FaultSpec::parse("corrupt=0.5,writefail=0.25,seed=3");
    ASSERT_TRUE(e.ok());
    auto again = FaultSpec::parse(e.value().toString());
    ASSERT_TRUE(again.ok());
    EXPECT_DOUBLE_EQ(again.value().corrupt, 0.5);
    EXPECT_DOUBLE_EQ(again.value().writeFail, 0.25);
    EXPECT_EQ(again.value().seed, 3u);
}

TEST(FaultSpec, RejectsMalformedInput)
{
    auto expectBad = [](const std::string &text) {
        auto e = FaultSpec::parse(text);
        ASSERT_FALSE(e.ok()) << text;
        EXPECT_EQ(e.error().code, ErrorCode::InvalidArgument) << text;
    };
    expectBad("corrupt");            // no '='
    expectBad("corrupt=lots");       // not a number
    expectBad("corrupt=1.5");        // out of [0, 1]
    expectBad("corrupt=-0.1");       // negative probability
    expectBad("explode=0.5");        // unknown key
    expectBad("seed=-1");            // negative seed
}

// ------------------------------------------------------- decision streams

TEST(FaultStream, DistinctCellsAndAttemptsGetDistinctStreams)
{
    EXPECT_EQ(faultStream(1, 0, 0), faultStream(1, 0, 0));
    EXPECT_NE(faultStream(1, 0, 0), faultStream(1, 1, 0));
    EXPECT_NE(faultStream(1, 0, 0), faultStream(1, 0, 1));
    EXPECT_NE(faultStream(1, 0, 0), faultStream(2, 0, 0));
}

TEST(FaultInjectorTest, SameStreamSameDecisions)
{
    FaultSpec spec;
    spec.corrupt = 0.5;
    FaultInjector a(spec, 42);
    FaultInjector b(spec, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.fire(0.5), b.fire(0.5)) << "draw " << i;
}

TEST(FaultInjectorTest, ProbabilityEndpoints)
{
    FaultSpec spec;
    FaultInjector inj(spec, 7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.fire(0.0));
        EXPECT_TRUE(inj.fire(1.0));
    }
}

// ------------------------------------------------------ FaultyTraceSource

TEST(FaultyTraceSourceTest, CorruptFaultThrowsAndEmitsEvent)
{
    FaultSpec spec;
    spec.corrupt = 1.0;
    CollectingSink sink;
    FaultyTraceSource src(std::make_unique<CountingSource>(), spec, 5,
                          &sink);
    TraceRecord rec;
    setQuiet(true);
    try {
        src.next(rec);
        FAIL() << "corrupt fault did not fire";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        EXPECT_NE(e.error().message.find("injected fault"),
                  std::string::npos);
    }
    setQuiet(false);
    ASSERT_EQ(sink.countOf(EventKind::FaultInjected), 1u);
    EXPECT_EQ(sink.events()[0].level,
              static_cast<std::uint8_t>(FaultKind::CorruptRecord));
}

TEST(FaultyTraceSourceTest, TruncateFaultEndsTheTrace)
{
    FaultSpec spec;
    spec.truncate = 1.0;
    FaultyTraceSource src(std::make_unique<CountingSource>(), spec, 5);
    TraceRecord rec;
    setQuiet(true);
    try {
        src.next(rec);
        FAIL() << "truncate fault did not fire";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Truncated);
    }
    setQuiet(false);
    // After truncation the source stays exhausted instead of faulting
    // again.
    EXPECT_FALSE(src.next(rec));
}

TEST(FaultyTraceSourceTest, ZeroSpecIsTransparent)
{
    FaultyTraceSource src(std::make_unique<CountingSource>(),
                          FaultSpec{}, 5);
    TraceRecord rec;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(src.next(rec));
        EXPECT_EQ(rec.pc, 0x1000u + 4u * static_cast<unsigned>(i));
    }
}

TEST(FaultyTraceSourceTest, DecisionsAreDeterministic)
{
    FaultSpec spec;
    spec.throwProb = 0.05;
    auto firstThrowAt = [&] {
        FaultyTraceSource src(std::make_unique<CountingSource>(), spec,
                              11);
        TraceRecord rec;
        for (int i = 0; i < 10000; ++i) {
            try {
                src.next(rec);
            } catch (const std::runtime_error &) {
                return i;
            }
        }
        return -1;
    };
    setQuiet(true);
    int a = firstThrowAt();
    int b = firstThrowAt();
    setQuiet(false);
    EXPECT_NE(a, -1);
    EXPECT_EQ(a, b);
}

// -------------------------------------------------------------- FaultySink

TEST(FaultySinkTest, WriteFailureIsTransient)
{
    FaultSpec spec;
    spec.writeFail = 1.0;
    CollectingSink inner;
    FaultySink sink(&inner, spec, 3);
    setQuiet(true);
    try {
        sink.event(TraceEvent{});
        FAIL() << "write fault did not fire";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::IoError);
        EXPECT_TRUE(e.error().transient);
    }
    setQuiet(false);
    EXPECT_TRUE(inner.events().empty());
}

TEST(FaultySinkTest, ForwardsWhenNotFiring)
{
    CollectingSink inner;
    FaultySink sink(&inner, FaultSpec{}, 3);
    sink.event(TraceEvent{});
    sink.flush();
    EXPECT_EQ(inner.events().size(), 1u);
}

// ------------------------------------------------- sweep fault isolation

TEST(SweepFaults, CertainFaultFailsEveryCellWithoutKillingTheSweep)
{
    setQuiet(true);
    FaultSpec faults;
    faults.corrupt = 1.0;
    faults.seed = 7;
    SweepSpec spec = smallSpec();
    SweepResults res = SweepRunner(2).injectFaults(faults).run(spec);
    setQuiet(false);

    ASSERT_EQ(res.size(), spec.numCells());
    EXPECT_EQ(res.failedCount(), spec.numCells());
    for (std::size_t i = 0; i < res.size(); ++i) {
        const CellOutcome &out = res.outcomeAt(i);
        EXPECT_FALSE(out.ok);
        EXPECT_EQ(out.error.code, ErrorCode::ParseError);
        EXPECT_NE(out.error.message.find("injected fault"),
                  std::string::npos);
    }
}

TEST(SweepFaults, HealthyCellsMatchAnUninjectedRunExactly)
{
    SweepSpec spec = smallSpec();
    SweepResults clean = SweepRunner(2).run(spec);

    setQuiet(true);
    FaultSpec faults;
    faults.throwProb = 0.00002; // rare: some cells fail, some survive
    faults.seed = 12;
    SweepResults faulty = SweepRunner(2).injectFaults(faults).run(spec);
    setQuiet(false);

    ASSERT_EQ(faulty.size(), clean.size());
    EXPECT_TRUE(clean.allOk());
    // The seed above must actually fail something, or the test is
    // vacuous; and it must not fail everything, or "healthy cells"
    // is an empty set.
    EXPECT_GT(faulty.failedCount(), 0u);
    EXPECT_LT(faulty.failedCount(), faulty.size());
    for (std::size_t i = 0; i < faulty.size(); ++i) {
        if (!faulty.okAt(i))
            continue;
        EXPECT_EQ(faulty.at(i).totalCpi(), clean.at(i).totalCpi())
            << "cell " << i;
        EXPECT_EQ(faulty.at(i).vmcpi(), clean.at(i).vmcpi())
            << "cell " << i;
    }
}

TEST(SweepFaults, TransientWriteFailureSucceedsOnRetry)
{
    // writefail faults are transient and each attempt rolls a fresh
    // decision stream, so with enough retries every cell completes.
    setQuiet(true);
    FaultSpec faults;
    faults.writeFail = 1.0; // first event write of attempt 1 fails...
    faults.seed = 5;
    SweepSpec spec = smallSpec();

    // Without retries every cell that writes an event fails.
    SweepResults noRetry = SweepRunner(2).injectFaults(faults).run(spec);
    EXPECT_GT(noRetry.failedCount(), 0u);
    for (std::size_t i = 0; i < noRetry.size(); ++i)
        if (!noRetry.okAt(i)) {
            EXPECT_TRUE(noRetry.outcomeAt(i).error.transient);
            EXPECT_EQ(noRetry.outcomeAt(i).attempts, 1u);
        }
    setQuiet(false);
}

TEST(SweepFaults, RetriedTransientFailureRecordsAttempts)
{
    setQuiet(true);
    FaultSpec faults;
    // Each cell emits ~2k events; at p=5e-4 an attempt fails with
    // probability ~0.6, so retries certainly happen, and twenty of
    // them make eventual success near-certain. The decision streams
    // are seeded, so whatever happens here happens on every run.
    faults.writeFail = 0.0005;
    faults.seed = 5;
    SweepSpec spec = smallSpec();
    SweepResults res =
        SweepRunner(2).injectFaults(faults).retry({20, 0.0}).run(spec);
    setQuiet(false);

    // The campaign completes, and at least one cell needed more than
    // one attempt (else the injection never fired and the test is
    // vacuous).
    EXPECT_TRUE(res.allOk()) << res.failedCount() << " cells failed";
    unsigned maxAttempts = 0;
    for (std::size_t i = 0; i < res.size(); ++i)
        maxAttempts = std::max(maxAttempts, res.outcomeAt(i).attempts);
    EXPECT_GT(maxAttempts, 1u);
}

TEST(SweepFaults, WatchdogTimesOutRunawayCells)
{
    setQuiet(true);
    SimConfig base;
    base.l1 = CacheParams{4_KiB, 32};
    base.l2 = CacheParams{1_MiB, 64};
    SweepSpec spec;
    // Enough instructions that 50ms of wall clock cannot finish them.
    spec.base(base).workloads({"gcc"}).instructions(200'000'000)
        .warmup(0);
    SweepResults res = SweepRunner(1).cellTimeout(0.05).run(spec);
    setQuiet(false);

    ASSERT_EQ(res.size(), 1u);
    const CellOutcome &out = res.outcomeAt(0);
    ASSERT_FALSE(out.ok);
    EXPECT_EQ(out.error.code, ErrorCode::Timeout);
    EXPECT_NE(out.error.message.find("wall-clock"), std::string::npos);
    // Timeouts are deterministic failures: never retried.
    EXPECT_EQ(out.attempts, 1u);
}

TEST(SweepFaults, FailedCellsAppearInCsv)
{
    setQuiet(true);
    FaultSpec faults;
    faults.corrupt = 1.0;
    SweepSpec spec = smallSpec();
    SweepResults res = SweepRunner(2).injectFaults(faults).run(spec);
    setQuiet(false);

    std::ostringstream csv;
    res.writeCsv(csv);
    std::string text = csv.str();
    EXPECT_NE(text.find("failed"), std::string::npos);
    EXPECT_NE(text.find("injected fault"), std::string::npos);
    EXPECT_EQ(text.find(",ok,"), std::string::npos);
}

} // anonymous namespace
} // namespace vmsim
