/**
 * @file
 * Tests for the invariant-checking layer: CheckReport mechanics, the
 * InvariantChecker's counter/event/interval audits across all nine
 * organizations, counter-vector diffing, the partial-run conservation
 * law under cancellation, and the live-TLB laws.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "base/intmath.hh"
#include "check/invariants.hh"
#include "core/simulator.hh"
#include "obs/event.hh"
#include "obs/interval.hh"
#include "os/ultrix_vm.hh"
#include "trace/synthetic/workloads.hh"

namespace vmsim
{
namespace
{

SimConfig
cfg(SystemKind kind)
{
    SimConfig c;
    c.kind = kind;
    c.l1 = CacheParams{16_KiB, 32};
    c.l2 = CacheParams{1_MiB, 64};
    return c;
}

constexpr SystemKind kAllKinds[] = {
    SystemKind::Ultrix, SystemKind::Mach,       SystemKind::Intel,
    SystemKind::Parisc, SystemKind::Notlb,      SystemKind::Base,
    SystemKind::HwInverted, SystemKind::HwMips, SystemKind::Spur,
};

// ------------------------------------------------------------ CheckReport

TEST(CheckReport, RecordsViolationsAndCounts)
{
    CheckReport rep;
    EXPECT_TRUE(rep.check(true, "law.pass", "unused"));
    EXPECT_FALSE(rep.check(false, "law.fail", "got ", 3, " want ", 4));
    EXPECT_EQ(rep.lawsChecked(), 2u);
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.violations().size(), 1u);
    EXPECT_EQ(rep.violations()[0].law, "law.fail");
    EXPECT_EQ(rep.violations()[0].message, "got 3 want 4");
}

TEST(CheckReport, MergePrefixedTagsLeg)
{
    CheckReport inner;
    inner.check(false, "counter.mismatch", "detail");
    CheckReport outer;
    outer.mergePrefixed(inner, "batched.");
    ASSERT_EQ(outer.violations().size(), 1u);
    EXPECT_EQ(outer.violations()[0].law, "batched.counter.mismatch");
    EXPECT_EQ(outer.lawsChecked(), 1u);
}

TEST(CheckReport, OrThrowRaisesInternal)
{
    CheckReport rep;
    rep.check(true, "ok", "");
    EXPECT_NO_THROW(rep.orThrow());
    rep.check(false, "broken", "x != y");
    try {
        rep.orThrow();
        FAIL() << "orThrow did not throw";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.error().code, ErrorCode::Internal);
    }
}

// ------------------------------------------------------ InvariantChecker

TEST(InvariantChecker, AllNineOrganizationsPassCounterAudit)
{
    for (SystemKind kind : kAllKinds) {
        SimConfig c = cfg(kind);
        Results r = runOnce(c, "gcc", 20000, 5000);
        CheckReport rep = InvariantChecker(c).check(r);
        EXPECT_TRUE(rep.ok()) << kindName(kind) << ": "
                              << rep.toString();
        EXPECT_GT(rep.lawsChecked(), 20u);
    }
}

TEST(InvariantChecker, FullAuditWithEventsAndIntervals)
{
    SimConfig c = cfg(SystemKind::Mach);
    c.ctxSwitchInterval = 997;
    c.tlbAsidBits = 6;
    c.l2TlbEntries = 256;
    CollectingSink sink;
    IntervalSampler sampler(3000);
    RunHooks hooks;
    hooks.sink = &sink;
    hooks.sampler = &sampler;
    Results r = runOnce(c, "vortex", 24000, 6000, hooks);
    CheckReport rep = InvariantChecker(c).checkAll(
        r, &sink.events(), &sampler.intervals());
    EXPECT_TRUE(rep.ok()) << rep.toString();
    // The event and interval laws actually ran.
    EXPECT_GT(rep.lawsChecked(),
              InvariantChecker(c).check(r).lawsChecked());
}

TEST(InvariantChecker, DetectsCorruptedVmCounter)
{
    SimConfig c = cfg(SystemKind::Ultrix);
    Results r = runOnce(c, "gcc", 20000, 5000);
    VmStats vm = r.vmStats();
    ++vm.pteLoads; // conservation now broken
    Results bad(r.system(), r.workload(), r.userInstrs(), r.memStats(),
                vm, r.costs());
    EXPECT_FALSE(InvariantChecker(c).check(bad).ok());
}

TEST(InvariantChecker, DetectsCorruptedMemCounter)
{
    SimConfig c = cfg(SystemKind::Intel);
    Results r = runOnce(c, "ijpeg", 20000, 5000);
    MemSystemStats mem = r.memStats();
    // One phantom fetch breaks accesses == userInstrs.
    ++mem.inst[static_cast<unsigned>(AccessClass::User)].accesses;
    Results bad(r.system(), r.workload(), r.userInstrs(), mem,
                r.vmStats(), r.costs());
    EXPECT_FALSE(InvariantChecker(c).check(bad).ok());
}

// ------------------------------------------------------------ diffResults

TEST(DiffResults, IdenticalRunsAgree)
{
    SimConfig c = cfg(SystemKind::Parisc);
    Results a = runOnce(c, "gcc", 15000, 3000);
    Results b = runOnce(c, "gcc", 15000, 3000);
    CheckReport rep = diffResults(a, b, "first", "second");
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(DiffResults, DetectsDivergence)
{
    SimConfig c = cfg(SystemKind::Parisc);
    Results a = runOnce(c, "gcc", 15000, 3000);
    SimConfig c2 = c;
    c2.seed = c.seed + 1; // different trace → different counters
    Results b = runOnce(c2, "gcc", 15000, 3000);
    EXPECT_FALSE(diffResults(a, b, "first", "second").ok());
}

// ------------------------------------- cancellation conservation (partial)

/**
 * Forwards an inner trace and trips @p token after @p after records,
 * so the simulator's next cancel poll fires mid-run deterministically.
 */
class TripwireTrace : public TraceSource
{
  public:
    TripwireTrace(TraceSource &inner, std::atomic<bool> &token,
                  Counter after)
        : inner_(inner), token_(token), after_(after)
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (++seen_ > after_)
            token_.store(true, std::memory_order_relaxed);
        return inner_.next(rec);
    }

  private:
    TraceSource &inner_;
    std::atomic<bool> &token_;
    Counter after_;
    Counter seen_ = 0;
};

TEST(Cancellation, ScalarPollAtZeroRetiresNothing)
{
    System sys(cfg(SystemKind::Ultrix));
    GccLikeWorkload trace(9);
    std::atomic<bool> token{true}; // canceled before the first poll
    Simulator sim(sys.vm(), trace, 0);
    sim.setBatchSize(1);
    sim.setCancel(&token);
    EXPECT_THROW(sim.run(10000), VmsimError);
    EXPECT_EQ(sim.instructionsExecuted(), 0u);
    // The record the loop condition consumed was never executed: the
    // memory system saw zero instruction fetches.
    CheckReport rep = checkExecutedConservation(
        sim.instructionsExecuted(), sys.mem().stats());
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_EQ(sys.mem().stats().instOf(AccessClass::User).accesses, 0u);
}

TEST(Cancellation, ScalarMidRunConservesExecuted)
{
    System sys(cfg(SystemKind::Ultrix));
    GccLikeWorkload inner(9);
    std::atomic<bool> token{false};
    TripwireTrace trace(inner, token, 100);
    Simulator sim(sys.vm(), trace, 0);
    sim.setBatchSize(1);
    sim.setCancel(&token);
    EXPECT_THROW(sim.run(10000), VmsimError);
    // Tripped at record 100; the scalar loop polls every 2048
    // instructions, so exactly 2048 retired.
    EXPECT_EQ(sim.instructionsExecuted(), 2048u);
    CheckReport rep = checkExecutedConservation(
        sim.instructionsExecuted(), sys.mem().stats());
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(Cancellation, BatchedMidRunConservesExecuted)
{
    System sys(cfg(SystemKind::Mach));
    GccLikeWorkload inner(9);
    std::atomic<bool> token{false};
    TripwireTrace trace(inner, token, 100);
    Simulator sim(sys.vm(), trace, 0);
    sim.setBatchSize(64);
    sim.setCancel(&token);
    EXPECT_THROW(sim.run(10000), VmsimError);
    // Tripped inside the second batch (record 100 of 64-record
    // batches); the poll at the third batch head cancels with every
    // fetched-and-executed batch fully retired.
    EXPECT_EQ(sim.instructionsExecuted(), 128u);
    CheckReport rep = checkExecutedConservation(
        sim.instructionsExecuted(), sys.mem().stats());
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

// --------------------------------------------------------------- live TLB

TEST(LiveTlb, FreshWarmupFreeRunSatisfiesTlbLaws)
{
    SimConfig c = cfg(SystemKind::Ultrix);
    System sys(c);
    GccLikeWorkload trace(c.seed);
    Results r = sys.run(trace, 20000, "gcc", 0);
    CheckReport rep;
    checkLiveTlb(sys.vm(), r.userInstrs(), rep);
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GT(rep.lawsChecked(), 0u);
}

} // anonymous namespace
} // namespace vmsim
