/**
 * @file
 * Tests for the trace record types and the VMT1 binary file format:
 * round-tripping, header validation, truncation detection, rewind.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/error.hh"
#include "base/logging.hh"
#include "trace/trace.hh"
#include "trace/trace_file.hh"

namespace vmsim
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempFile
{
  public:
    TempFile()
    {
        char tmpl[] = "/tmp/vmsim_trace_XXXXXX";
        int fd = mkstemp(tmpl);
        if (fd >= 0)
            ::close(fd);
        path_ = tmpl;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(TraceRecord, Predicates)
{
    TraceRecord r{0x1000, 0x2000, MemOp::None};
    EXPECT_FALSE(r.isMemOp());
    EXPECT_FALSE(r.isStore());
    r.op = MemOp::Load;
    EXPECT_TRUE(r.isMemOp());
    EXPECT_FALSE(r.isStore());
    r.op = MemOp::Store;
    EXPECT_TRUE(r.isMemOp());
    EXPECT_TRUE(r.isStore());
}

TEST(TraceRecord, Equality)
{
    TraceRecord a{1, 2, MemOp::Load};
    TraceRecord b{1, 2, MemOp::Load};
    TraceRecord c{1, 2, MemOp::Store};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(TraceFile, RoundTrip)
{
    TempFile tf;
    std::vector<TraceRecord> recs = {
        {0x00400000, 0, MemOp::None},
        {0x00400004, 0x10000000, MemOp::Load},
        {0x00400008, 0x7fff0000, MemOp::Store},
        {0xfffffffc, 0xffffffff, MemOp::Load},
    };
    {
        TraceFileWriter w(tf.path());
        for (const auto &r : recs)
            w.write(r);
        w.close();
        EXPECT_EQ(w.recordsWritten(), recs.size());
    }
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.recordCount(), recs.size());
    TraceRecord rec;
    for (const auto &expect : recs) {
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec, expect);
    }
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.recordsRead(), recs.size());
}

TEST(TraceFile, EmptyTrace)
{
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        w.close();
    }
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.recordCount(), 0u);
    TraceRecord rec;
    EXPECT_FALSE(r.next(rec));
}

TEST(TraceFile, LargeTraceCrossesBuffering)
{
    TempFile tf;
    const Counter n = 10000; // > one 4096-record I/O buffer
    {
        TraceFileWriter w(tf.path());
        for (Counter i = 0; i < n; ++i)
            w.write(TraceRecord{static_cast<std::uint32_t>(i * 4),
                                static_cast<std::uint32_t>(i),
                                i % 3 == 0 ? MemOp::Load : MemOp::None});
        w.close();
    }
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.recordCount(), n);
    TraceRecord rec;
    Counter i = 0;
    while (r.next(rec)) {
        ASSERT_EQ(rec.pc, i * 4);
        ++i;
    }
    EXPECT_EQ(i, n);
}

TEST(TraceFile, Rewind)
{
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        w.write(TraceRecord{4, 0, MemOp::None});
        w.write(TraceRecord{8, 0, MemOp::None});
        w.close();
    }
    TraceFileReader r(tf.path());
    TraceRecord rec;
    while (r.next(rec)) {
    }
    r.rewind();
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.pc, 4u);
    EXPECT_EQ(r.recordsRead(), 1u);
}

TEST(TraceFile, DestructorClosesCleanly)
{
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        w.write(TraceRecord{4, 0, MemOp::None});
        // no explicit close(): destructor must patch the header.
    }
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.recordCount(), 1u);
}

TEST(TraceFile, MissingFileIsFatal)
{
    setQuiet(true);
    EXPECT_THROW(TraceFileReader("/nonexistent/vmsim.trace"), FatalError);
    setQuiet(false);
}

TEST(TraceFile, BadMagicIsFatal)
{
    setQuiet(true);
    TempFile tf;
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "wb");
        std::fputs("NOTATRACEFILE___", f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader r(tf.path()), FatalError);
    setQuiet(false);
}

TEST(TraceFile, ShortHeaderIsFatal)
{
    setQuiet(true);
    TempFile tf;
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "wb");
        std::fputs("VMT1", f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceFileReader r(tf.path()), FatalError);
    setQuiet(false);
}

TEST(TraceFile, CorruptOpByteIsFatal)
{
    setQuiet(true);
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        w.write(TraceRecord{4, 0, MemOp::None});
        w.close();
    }
    // Corrupt the op byte (offset 8 within the record). The CRC check
    // fires first and still names record 0.
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "rb+");
        std::fseek(f, kTraceHeaderBytes + 8, SEEK_SET);
        std::fputc(0x7f, f);
        std::fclose(f);
    }
    TraceFileReader r(tf.path());
    TraceRecord rec;
    EXPECT_THROW(r.next(rec), FatalError);
    setQuiet(false);
}

TEST(TraceFile, CorruptPayloadByteIsDetectedByCrc)
{
    // Pre-CRC, a flipped bit in pc/daddr replayed silently into wrong
    // results; version 2 catches it with the exact record index.
    setQuiet(true);
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        for (int i = 0; i < 3; ++i)
            w.write(TraceRecord{static_cast<std::uint32_t>(4 * i), 96,
                                MemOp::Load});
        w.close();
    }
    // Flip a bit in record 1's daddr field (offset 4 in the record).
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "rb+");
        long off =
            static_cast<long>(kTraceHeaderBytes + kTraceRecordBytes + 4);
        std::fseek(f, off, SEEK_SET);
        int b = std::fgetc(f);
        std::fseek(f, off, SEEK_SET);
        std::fputc(b ^ 0x10, f);
        std::fclose(f);
    }
    TraceFileReader r(tf.path());
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec)); // record 0 is intact
    try {
        r.next(rec);
        FAIL() << "corrupt payload byte was not detected";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        EXPECT_NE(e.error().message.find("record 1"), std::string::npos)
            << e.error().message;
        EXPECT_NE(e.error().message.find("checksum"), std::string::npos)
            << e.error().message;
    }
    EXPECT_EQ(r.recordsRead(), 1u);
    setQuiet(false);
}

TEST(TraceFile, VersionOneFilesAreStillReadable)
{
    // Hand-build a v1 file (9-byte records, no CRC): old traces stay
    // valid interchange.
    TempFile tf;
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "wb");
        unsigned char header[kTraceHeaderBytes] = {'V', 'M', 'T', '1',
                                                   1,   0,   0,   0,
                                                   2,   0,   0,   0};
        std::fwrite(header, 1, sizeof(header), f);
        const unsigned char recs[2][kTraceRecordBytesV1] = {
            {4, 0, 0, 0, 96, 0, 0, 0, 1},
            {8, 0, 0, 0, 100, 0, 0, 0, 2},
        };
        std::fwrite(recs, 1, sizeof(recs), f);
        std::fclose(f);
    }
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.version(), 1u);
    EXPECT_EQ(r.recordCount(), 2u);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.pc, 4u);
    EXPECT_EQ(rec.daddr, 96u);
    EXPECT_EQ(rec.op, MemOp::Load);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.op, MemOp::Store);
    EXPECT_FALSE(r.next(rec));
}

TEST(TraceFile, RecordSizeIsStable)
{
    // The on-disk format is an interchange contract; its sizes are
    // frozen by the header comment in trace_file.hh.
    EXPECT_EQ(kTraceRecordBytes, 13u);
    EXPECT_EQ(kTraceRecordBytesV1, 9u);
    EXPECT_EQ(kTraceHeaderBytes, 16u);
}


TEST(TraceFile, WriteAfterClosePanics)
{
    setQuiet(true);
    TempFile tf;
    TraceFileWriter w(tf.path());
    w.write(TraceRecord{4, 0, MemOp::None});
    w.close();
    EXPECT_THROW(w.write(TraceRecord{8, 0, MemOp::None}), PanicError);
    setQuiet(false);
}

TEST(TraceFile, CloseIsIdempotent)
{
    TempFile tf;
    TraceFileWriter w(tf.path());
    w.write(TraceRecord{4, 0, MemOp::None});
    w.close();
    EXPECT_NO_THROW(w.close());
    TraceFileReader r(tf.path());
    EXPECT_EQ(r.recordCount(), 1u);
}

TEST(TraceFile, UnwritablePathIsFatal)
{
    setQuiet(true);
    EXPECT_THROW(TraceFileWriter("/nonexistent_dir/trace.vmt"),
                 FatalError);
    setQuiet(false);
}

TEST(TraceFile, TrailingGarbageIsRejected)
{
    // A file larger than the header promises means the header and the
    // data disagree — refuse it rather than silently trusting either.
    setQuiet(true);
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        w.write(TraceRecord{4, 0, MemOp::None});
        w.close();
    }
    {
        std::FILE *f = std::fopen(tf.path().c_str(), "ab");
        // One whole extra record's worth of zero bytes.
        for (std::size_t i = 0; i < kTraceRecordBytes; ++i)
            std::fputc(0, f);
        std::fclose(f);
    }
    try {
        TraceFileReader r(tf.path());
        FAIL() << "oversized trace file was accepted";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        // The diagnostic must name the file and both byte counts.
        EXPECT_NE(e.error().message.find(tf.path()), std::string::npos);
        const std::string expectedBytes =
            std::to_string(kTraceHeaderBytes + kTraceRecordBytes);
        const std::string actualBytes =
            std::to_string(kTraceHeaderBytes + 2 * kTraceRecordBytes);
        EXPECT_NE(e.error().message.find(expectedBytes),
                  std::string::npos)
            << e.error().message;
        EXPECT_NE(e.error().message.find(actualBytes), std::string::npos)
            << e.error().message;
    }
    setQuiet(false);
}

TEST(TraceFile, TruncatedFileIsRejectedOnOpen)
{
    // A truncated copy (say, an interrupted download) is caught at
    // open, before any record is consumed.
    setQuiet(true);
    TempFile tf;
    {
        TraceFileWriter w(tf.path());
        for (int i = 0; i < 4; ++i)
            w.write(TraceRecord{static_cast<std::uint32_t>(4 * i), 0,
                                MemOp::None});
        w.close();
    }
    ASSERT_EQ(::truncate(tf.path().c_str(),
                         kTraceHeaderBytes + 2 * kTraceRecordBytes),
              0);
    try {
        TraceFileReader r(tf.path());
        FAIL() << "truncated trace file was accepted";
    } catch (const VmsimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Truncated);
        EXPECT_NE(e.error().message.find("truncated"),
                  std::string::npos);
        EXPECT_NE(e.error().message.find(tf.path()), std::string::npos);
    }
    setQuiet(false);
}

TEST(TraceFile, OpenFactoryReturnsErrorNotThrow)
{
    auto r = TraceFileReader::open("/nonexistent/vmsim.trace");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::IoError);
    // The path travels in the context field and so reaches toString().
    EXPECT_EQ(r.error().context, "/nonexistent/vmsim.trace");
    EXPECT_NE(r.error().toString().find("/nonexistent/vmsim.trace"),
              std::string::npos);

    auto w = TraceFileWriter::open("/nonexistent_dir/trace.vmt");
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.error().code, ErrorCode::IoError);
}

TEST(TraceFile, OpenFactoryYieldsWorkingReader)
{
    TempFile tf;
    {
        auto w = TraceFileWriter::open(tf.path());
        ASSERT_TRUE(w.ok());
        w.value()->write(TraceRecord{4, 0, MemOp::Load});
        w.value()->close();
    }
    auto r = TraceFileReader::open(tf.path());
    ASSERT_TRUE(r.ok());
    TraceRecord rec;
    ASSERT_TRUE(r.value()->next(rec));
    EXPECT_EQ(rec.pc, 4u);
}

TEST(TraceFile, WriterDestructorWarnsOnFailedClose)
{
    // /dev/full accepts buffered writes but fails them at flush time
    // with ENOSPC, so the destructor's implicit close() fails after
    // every write() call has already "succeeded". The destructor must
    // not throw; it must warn with the path instead.
    if (::access("/dev/full", W_OK) != 0)
        GTEST_SKIP() << "/dev/full not available";
    testing::internal::CaptureStderr();
    {
        TraceFileWriter w("/dev/full");
        w.write(TraceRecord{4, 0, MemOp::None});
        // no close(): destructor takes the failing path.
    }
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("/dev/full"), std::string::npos) << err;
    EXPECT_NE(err.find("failed to close"), std::string::npos) << err;
}

TEST(TraceFile, WriterDestructorSilentOnCleanClose)
{
    TempFile tf;
    testing::internal::CaptureStderr();
    {
        TraceFileWriter w(tf.path());
        w.write(TraceRecord{4, 0, MemOp::None});
    }
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

} // anonymous namespace
} // namespace vmsim
