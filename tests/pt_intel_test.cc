/**
 * @file
 * Tests for the Intel two-tiered top-down page table (paper Fig. 3):
 * page-directory indexing, scattered first-touch PTE-page allocation,
 * and the exactly-two-physical-references walk structure.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/units.hh"
#include "mem/phys_mem.hh"
#include "pt/intel_page_table.hh"

namespace vmsim
{
namespace
{

TEST(IntelPageTable, DirectorySize)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    // 512 four-byte entries cover the 2 GB user space (one per 4 MB
    // segment). (A full 4 GB IA-32 directory would be 4 KB; only the
    // user half is walked here.)
    EXPECT_EQ(pt.pdBytes(), 2_KiB);
}

TEST(IntelPageTable, RootEntrySharedAcrossSegment)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    // VPNs within one 4 MB segment (1024 pages) share a root entry.
    EXPECT_EQ(pt.rootEntryAddr(0), pt.rootEntryAddr(1023));
    EXPECT_EQ(pt.rootEntryAddr(1024) - pt.rootEntryAddr(0), 4u);
}

TEST(IntelPageTable, RootEntriesPhysical)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    EXPECT_GE(pt.rootEntryAddr(0), kPhysWindowBase);
    EXPECT_LT(pt.rootEntryAddr(524287), kPhysWindowBase + pm.sizeBytes());
}

TEST(IntelPageTable, LeafEntriesWithinAllocatedPages)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    Addr leaf0 = pt.leafEntryAddr(0);
    Addr leaf1 = pt.leafEntryAddr(1);
    // Adjacent VPNs in one segment: adjacent PTEs in the same page.
    EXPECT_EQ(leaf1 - leaf0, 4u);
    EXPECT_EQ(leaf0 >> 12, leaf1 >> 12);
    EXPECT_GE(leaf0, kPhysWindowBase);
}

TEST(IntelPageTable, PtePagesAllocatedFirstTouch)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    EXPECT_EQ(pt.ptePagesAllocated(), 0u);
    pt.leafEntryAddr(0);
    EXPECT_EQ(pt.ptePagesAllocated(), 1u);
    pt.leafEntryAddr(512); // same segment
    EXPECT_EQ(pt.ptePagesAllocated(), 1u);
    pt.leafEntryAddr(1024); // next segment
    EXPECT_EQ(pt.ptePagesAllocated(), 2u);
}

TEST(IntelPageTable, LeafAddressesStableAcrossCalls)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    Addr a = pt.leafEntryAddr(777);
    Addr b = pt.leafEntryAddr(777);
    EXPECT_EQ(a, b);
}

TEST(IntelPageTable, PtePagesAreScattered)
{
    // PTE pages allocated interleaved with data frames must not be
    // contiguous — the "disjunct PTE pages" property of Figure 3.
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    pt.leafEntryAddr(0);          // PTE page for segment 0
    pm.frameOf(42);               // a data page lands in between
    pm.frameOf(43);
    pt.leafEntryAddr(1024);       // PTE page for segment 1
    Addr p0 = pt.leafEntryAddr(0) >> 12;
    Addr p1 = pt.leafEntryAddr(1024) >> 12;
    EXPECT_GT(p1, p0 + 1); // not adjacent frames
}

TEST(IntelPageTable, ExactlyTwoReferencesPerWalk)
{
    // Structural: the walk is root + leaf, both physical, so neither
    // can recurse through the TLB.
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    Vpn v = 300000;
    Addr root = pt.rootEntryAddr(v);
    Addr leaf = pt.leafEntryAddr(v);
    EXPECT_NE(root >> 12, leaf >> 12);
    EXPECT_GE(root, kPhysWindowBase);
    EXPECT_GE(leaf, kPhysWindowBase);
}

TEST(IntelPageTable, DistinctSegmentsDistinctLeafPages)
{
    PhysMem pm(8_MiB, 12);
    IntelPageTable pt(pm);
    std::set<Addr> pages;
    for (Vpn seg = 0; seg < 20; ++seg)
        pages.insert(pt.leafEntryAddr(seg * 1024) >> 12);
    EXPECT_EQ(pages.size(), 20u);
}

} // anonymous namespace
} // namespace vmsim
