/**
 * @file
 * Tests for MemSystem: two-level behavior, per-class attribution,
 * multi-line spans, I/D and L1/L2 isolation, and pollution effects.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/units.hh"
#include "mem/mem_system.hh"

namespace vmsim
{
namespace
{

CacheParams
cp(std::uint64_t size, unsigned line)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineSize = line;
    return p;
}

MemSystem
smallMem()
{
    return MemSystem(cp(1_KiB, 32), cp(8_KiB, 64));
}

TEST(MemSystem, InvalidHierarchyRejected)
{
    setQuiet(true);
    // L2 smaller than L1.
    EXPECT_THROW(MemSystem(cp(8_KiB, 32), cp(1_KiB, 64)), FatalError);
    // L2 line smaller than L1 line.
    EXPECT_THROW(MemSystem(cp(1_KiB, 64), cp(8_KiB, 32)), FatalError);
    setQuiet(false);
}

TEST(MemSystem, ColdAccessGoesToMemory)
{
    MemSystem m = smallMem();
    EXPECT_EQ(m.instFetch(0x1000, AccessClass::User), MemLevel::Memory);
    EXPECT_EQ(m.dataAccess(0x2000, 4, false, AccessClass::User),
              MemLevel::Memory);
}

TEST(MemSystem, SecondAccessHitsL1)
{
    MemSystem m = smallMem();
    m.instFetch(0x1000, AccessClass::User);
    EXPECT_EQ(m.instFetch(0x1000, AccessClass::User), MemLevel::L1);
    m.dataAccess(0x2000, 4, false, AccessClass::User);
    EXPECT_EQ(m.dataAccess(0x2000, 4, false, AccessClass::User),
              MemLevel::L1);
}

TEST(MemSystem, L1EvictionFallsBackToL2)
{
    MemSystem m = smallMem();
    m.dataAccess(0x0000, 4, false, AccessClass::User);
    // Conflict in the 1 KB L1 (same set), but distinct L2 sets.
    m.dataAccess(0x0400, 4, false, AccessClass::User);
    EXPECT_EQ(m.dataAccess(0x0000, 4, false, AccessClass::User),
              MemLevel::L2);
}

TEST(MemSystem, InstAndDataSidesAreSplit)
{
    MemSystem m = smallMem();
    m.instFetch(0x1000, AccessClass::User);
    // Same address on the data side must still be cold: split caches.
    EXPECT_EQ(m.dataAccess(0x1000, 4, false, AccessClass::User),
              MemLevel::Memory);
}

TEST(MemSystem, ClassAttributionSeparatesCounters)
{
    MemSystem m = smallMem();
    m.dataAccess(0x100, 4, false, AccessClass::User);
    m.dataAccess(0x5100, 4, false, AccessClass::PteUser);
    m.dataAccess(0x9100, 4, false, AccessClass::PteRoot);

    EXPECT_EQ(m.stats().dataOf(AccessClass::User).accesses, 1u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteUser).accesses, 1u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteRoot).accesses, 1u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteKernel).accesses, 0u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::User).l1Misses, 1u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::User).l2Misses, 1u);
}

TEST(MemSystem, SharedCachesCreatePollution)
{
    // A PTE access that conflicts with a resident user line evicts it:
    // the user's next access misses — the displacement effect the
    // paper charges to MCPI.
    MemSystem m = smallMem();
    m.dataAccess(0x0000, 4, false, AccessClass::User);
    EXPECT_EQ(m.dataAccess(0x0000, 4, false, AccessClass::User),
              MemLevel::L1);
    // Same L1 set and same L2 set (8 KB apart => same 1 KB L1 set;
    // 8 KB L2 has 128 sets of 64B -> 0x2000 % 0x2000 == 0 same L2 set).
    m.dataAccess(0x2000, 4, false, AccessClass::PteUser);
    MemLevel lvl = m.dataAccess(0x0000, 4, false, AccessClass::User);
    EXPECT_NE(lvl, MemLevel::L1);
    // The extra miss is attributed to the User class.
    EXPECT_EQ(m.stats().dataOf(AccessClass::User).l1Misses, 2u);
}

TEST(MemSystem, MultiLineSpanTouchesEachLine)
{
    MemSystem m = smallMem();
    // 16-byte access crossing a 32B line boundary: two lines touched.
    m.dataAccess(0x0018, 16, false, AccessClass::PteUser);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteUser).accesses, 2u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteUser).l1Misses, 2u);
    // Both lines now resident.
    EXPECT_EQ(m.dataAccess(0x0018, 16, false, AccessClass::PteUser),
              MemLevel::L1);
}

TEST(MemSystem, AlignedSpanWithinOneLine)
{
    MemSystem m = smallMem();
    // A 16-byte PA-RISC PTE aligned on 16B never crosses a 32B line.
    m.dataAccess(0x0040, 16, false, AccessClass::PteUser);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteUser).accesses, 1u);
}

TEST(MemSystem, ZeroSizeAccessTouchesOneLine)
{
    MemSystem m = smallMem();
    m.dataAccess(0x0040, 0, false, AccessClass::User);
    EXPECT_EQ(m.stats().dataOf(AccessClass::User).accesses, 1u);
}

TEST(MemSystem, StoreCountsTracked)
{
    MemSystem m = smallMem();
    m.dataAccess(0x40, 4, true, AccessClass::User);
    m.dataAccess(0x40, 4, false, AccessClass::User);
    m.dataAccess(0x40, 4, true, AccessClass::User);
    EXPECT_EQ(m.storeCount(), 2u);
}

TEST(MemSystem, StoreAllocatesLikeLoad)
{
    // Write-allocate: a store miss installs the line.
    MemSystem m = smallMem();
    m.dataAccess(0x40, 4, true, AccessClass::User);
    EXPECT_EQ(m.dataAccess(0x40, 4, false, AccessClass::User),
              MemLevel::L1);
}

TEST(MemSystem, ResetStatsPreservesCacheState)
{
    MemSystem m = smallMem();
    m.dataAccess(0x40, 4, false, AccessClass::User);
    m.resetStats();
    EXPECT_EQ(m.stats().dataOf(AccessClass::User).accesses, 0u);
    // Line still resident: warm state survives a stats reset.
    EXPECT_EQ(m.dataAccess(0x40, 4, false, AccessClass::User),
              MemLevel::L1);
}

TEST(MemSystem, InvalidateAllColdStarts)
{
    MemSystem m = smallMem();
    m.dataAccess(0x40, 4, false, AccessClass::User);
    m.invalidateAll();
    EXPECT_EQ(m.dataAccess(0x40, 4, false, AccessClass::User),
              MemLevel::Memory);
}

TEST(MemSystem, HandlerFetchGoesToInstSide)
{
    MemSystem m = smallMem();
    m.instFetch(0x80000000, AccessClass::HandlerFetch);
    EXPECT_EQ(m.stats().instOf(AccessClass::HandlerFetch).accesses, 1u);
    EXPECT_EQ(m.stats().dataOf(AccessClass::HandlerFetch).accesses, 0u);
    // Handler code displaces I-cache contents, not D-cache contents.
    EXPECT_EQ(m.dataAccess(0x80000000, 4, false, AccessClass::User),
              MemLevel::Memory);
}

TEST(MemSystem, L2HitAfterL1Eviction)
{
    MemSystem m = smallMem();
    // Fill L1 set 0 twice over; both lines should live in L2.
    m.dataAccess(0x0000, 4, false, AccessClass::User);
    m.dataAccess(0x0400, 4, false, AccessClass::User);
    auto &ctr = m.stats().dataOf(AccessClass::User);
    EXPECT_EQ(ctr.l2Misses, 2u);
    EXPECT_EQ(m.dataAccess(0x0000, 4, false, AccessClass::User),
              MemLevel::L2);
    EXPECT_EQ(m.dataAccess(0x0400, 4, false, AccessClass::User),
              MemLevel::L2);
    // No further L2 misses occurred.
    EXPECT_EQ(ctr.l2Misses, 2u);
}

TEST(MemSystem, CumulativeCountsAcrossClasses)
{
    MemSystem m = smallMem();
    for (int i = 0; i < 10; ++i)
        m.instFetch(0x1000 + i * 4, AccessClass::HandlerFetch);
    EXPECT_EQ(m.stats().instOf(AccessClass::HandlerFetch).accesses, 10u);
    // 10 sequential 4-byte fetches in 32B lines: 2 line misses.
    EXPECT_EQ(m.stats().instOf(AccessClass::HandlerFetch).l1Misses, 2u);
}


TEST(MemSystem, UnifiedL2KeepsClassAttribution)
{
    MemSystem m(cp(1_KiB, 32), cp(8_KiB, 64), 1, /*unified=*/true);
    m.dataAccess(0x100, 4, false, AccessClass::PteUser);
    m.instFetch(0x100, AccessClass::User);
    EXPECT_EQ(m.stats().dataOf(AccessClass::PteUser).accesses, 1u);
    EXPECT_EQ(m.stats().instOf(AccessClass::User).accesses, 1u);
    // The PTE load warmed the shared L2: the instruction fetch missed
    // L1i but hit L2.
    EXPECT_EQ(m.stats().instOf(AccessClass::User).l2Misses, 0u);
}

TEST(MemSystem, UnifiedL2CrossSidePollution)
{
    // Instruction traffic can evict data lines in a unified L2 —
    // impossible with split L2s.
    MemSystem m(cp(1_KiB, 32), cp(2_KiB, 32), 1, /*unified=*/true);
    // Unified L2 = 4 KB of 32B lines = 128 direct-mapped sets.
    m.dataAccess(0x0, 4, false, AccessClass::User);
    ASSERT_TRUE(m.l2d().probe(0x0));
    for (Addr a = 0; a < 8_KiB; a += 32)
        m.instFetch(0x100000 + a, AccessClass::User);
    // The sweep covered every set twice: the data line is gone from
    // the shared L2 (though still warm in the private L1d).
    EXPECT_FALSE(m.l2d().probe(0x0));
}

TEST(MemSystem, SplitL2NoCrossSidePollution)
{
    MemSystem m(cp(1_KiB, 32), cp(2_KiB, 32), 1, /*unified=*/false);
    m.dataAccess(0x0, 4, false, AccessClass::User);
    for (Addr a = 0; a < 8_KiB; a += 32)
        m.instFetch(0x100000 + a, AccessClass::User);
    // Data-side L2 untouched by instruction traffic.
    EXPECT_TRUE(m.l2d().probe(0x0));
}

} // anonymous namespace
} // namespace vmsim
